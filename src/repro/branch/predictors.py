"""Branch prediction: gshare direction predictor, BTB, return-address stack.

The fetch unit predicts every control-flow instruction it decodes:

* conditional branches — gshare (global history XOR PC indexing a 2-bit
  counter table), the style of predictor the 21264 generation shipped;
* direct branches/calls — target is static, always taken;
* indirect jumps — branch target buffer keyed by PC;
* returns — return-address stack.

Mispredictions are the aborts that make fetched-but-not-retired samples
appear in ProfileMe profiles, so prediction quality directly shapes the
experiments.

Warm-state contract: a :class:`BranchPredictor` instance (direction
counters, BTB, RAS) is part of the cross-engine warm state
(:class:`repro.cpu.warm.WarmState`).  In two-speed mode the functional
fast-forward trains it at retire order and the detailed windows train it
through their own fetch/retire pipeline; both engines tolerate the
other's RAS skew exactly as the hardware tolerates squashed calls (see
:class:`ReturnAddressStack`).
"""

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.probes.props import ratio


@dataclass(frozen=True)
class PredictorConfig:
    """Sizing of the prediction structures."""

    history_bits: int = 12  # paper: "typically between 8 to 12"
    counter_index_bits: int = 12  # 4096-entry 2-bit counter table
    btb_entries: int = 512
    ras_entries: int = 16

    def __post_init__(self):
        if self.history_bits < 1 or self.history_bits > 30:
            raise ConfigError("history_bits out of range: %d"
                              % self.history_bits)
        if self.counter_index_bits < 1:
            raise ConfigError("counter_index_bits must be >= 1")


class GshareDirectionPredictor:
    """Two-bit saturating counters indexed by PC XOR global history."""

    def __init__(self, config):
        self.config = config
        self._mask = (1 << config.counter_index_bits) - 1
        # 2-bit counters initialized weakly-taken: loops predict well fast.
        self._counters = [2] * (1 << config.counter_index_bits)
        self.lookups = 0
        self.correct = 0

    def _index(self, pc, history):
        return ((pc >> 2) ^ history) & self._mask

    def predict(self, pc, history):
        """Predicted direction for the branch at *pc*."""
        return self._counters[self._index(pc, history)] >= 2

    def train(self, pc, history, taken):
        """Update the counter with the resolved direction."""
        index = self._index(pc, history)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1

    def record_outcome(self, was_correct):
        self.lookups += 1
        if was_correct:
            self.correct += 1

    @property
    def accuracy(self):
        return ratio(self.correct, self.lookups)


class BranchTargetBuffer:
    """Direct-mapped PC -> predicted target store for indirect jumps."""

    def __init__(self, entries):
        if entries & (entries - 1) or entries < 1:
            raise ConfigError("BTB entries must be a power of two")
        self._entries = entries
        self._tags = [None] * entries
        self._targets = [0] * entries

    def _index(self, pc):
        return (pc >> 2) & (self._entries - 1)

    def predict(self, pc):
        """Predicted target of the jump at *pc*, or None on BTB miss."""
        index = self._index(pc)
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def train(self, pc, target):
        index = self._index(pc)
        self._tags[index] = pc
        self._targets[index] = target


class ReturnAddressStack:
    """Bounded LIFO of predicted return addresses.

    No mispredict repair is modelled: a squashed call/return leaves the
    stack slightly stale, exactly the behaviour of simple hardware RAS
    implementations of the era.  The resulting occasional return
    misprediction is a realistic abort source for the profiles.
    """

    def __init__(self, entries):
        if entries < 1:
            raise ConfigError("RAS needs >= 1 entry")
        self._entries = entries
        # maxlen makes overflow drop the *oldest* entry in O(1); the
        # old list.pop(0) did the same shift in O(entries) per push.
        self._stack = deque(maxlen=entries)

    def push(self, address):
        self._stack.append(address)

    def pop(self):
        """Predicted return address, or None if the stack is empty."""
        if not self._stack:
            return None
        return self._stack.pop()


class StaticDirectionPredictor:
    """Profile-hinted static prediction (no dynamic state).

    The baseline is the classic backward-taken/forward-not-taken (BTFN)
    heuristic, precomputed per conditional branch from the program image;
    *hints* (pc -> predicted-taken) override it.  Section 7's
    "guiding traditional compiler optimizations ... code generation"
    covers exactly this: branch-direction profiles compiled into static
    hint bits (cf. the paper's Young & Smith citation).
    """

    def __init__(self, program, hints=None):
        self._table = {}
        for pc, _ in program.listing():
            inst = program.fetch(pc)
            if inst.is_conditional:
                self._table[pc] = inst.target < pc  # BTFN default
        for pc, taken in (hints or {}).items():
            if pc in self._table:
                self._table[pc] = bool(taken)
        self.lookups = 0
        self.correct = 0

    def predict(self, pc, history):
        return self._table.get(pc, False)

    def train(self, pc, history, taken):
        """Static prediction has no state to train."""

    def record_outcome(self, was_correct):
        self.lookups += 1
        if was_correct:
            self.correct += 1

    @property
    def accuracy(self):
        return ratio(self.correct, self.lookups)


class BranchPredictor:
    """Facade bundling direction predictor, BTB and RAS.

    *direction* overrides the default gshare direction predictor (any
    object with predict/train/record_outcome), e.g. a
    :class:`StaticDirectionPredictor` built from profile hints.
    """

    def __init__(self, config=None, direction=None):
        self.config = config or PredictorConfig()
        self.direction = direction or GshareDirectionPredictor(self.config)
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.ras = ReturnAddressStack(self.config.ras_entries)

    def predict_conditional(self, pc, history):
        return self.direction.predict(pc, history)

    def predict_indirect(self, pc):
        return self.btb.predict(pc)

    def train_conditional(self, pc, history, taken, was_correct):
        self.direction.train(pc, history, taken)
        self.direction.record_outcome(was_correct)

    def train_indirect(self, pc, target):
        self.btb.train(pc, target)

    @property
    def mispredict_rate(self):
        direction = self.direction
        return ratio(direction.lookups - direction.correct,
                     direction.lookups)

    def register_probes(self, registry, prefix="branch"):
        """Expose the direction predictor under ``branch.*``."""
        direction = self.direction
        registry.register(prefix + ".lookups",
                          lambda: direction.lookups,
                          kind="counter", unit="branches",
                          description="direction-predictor lookups")
        registry.register(prefix + ".correct",
                          lambda: direction.correct,
                          kind="counter", unit="branches",
                          description="correctly predicted directions")
        registry.register(prefix + ".accuracy",
                          lambda: direction.accuracy,
                          kind="fraction", unit="ratio",
                          description="correct / lookups")
        registry.register(prefix + ".mispredict_rate",
                          lambda: self.mispredict_rate,
                          kind="fraction", unit="ratio",
                          description="(lookups - correct) / lookups")
