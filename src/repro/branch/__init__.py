"""Branch-prediction substrate."""

from repro.branch.history import GlobalHistoryRegister, history_bits_list
from repro.branch.predictors import (BranchPredictor, BranchTargetBuffer,
                                     GshareDirectionPredictor,
                                     PredictorConfig, ReturnAddressStack,
                                     StaticDirectionPredictor)

__all__ = [
    "BranchPredictor",
    "BranchTargetBuffer",
    "GlobalHistoryRegister",
    "GshareDirectionPredictor",
    "PredictorConfig",
    "ReturnAddressStack",
    "StaticDirectionPredictor",
    "history_bits_list",
]
