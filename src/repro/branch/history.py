"""Global branch-history register.

Most 90s-era predictors keep the directions of the last N conditional
branches in a shift register.  ProfileMe's *Profiled Path Register* captures
this register at instruction fetch time (section 4.1.3); the Figure 6
analysis then walks the CFG backwards matching its bits.

Bit 0 is the direction of the most recently resolved conditional branch;
bit k is the direction k branches ago.  Only conditional branches shift the
register (unconditional control flow carries no direction information).
"""


class GlobalHistoryRegister:
    """An N-bit taken/not-taken shift register."""

    def __init__(self, bits=16):
        if bits < 1:
            raise ValueError("history register needs >= 1 bit")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.value = 0
        self.shifted = 0  # total directions ever shifted in

    def push(self, taken):
        """Record one conditional-branch direction."""
        self.value = ((self.value << 1) | (1 if taken else 0)) & self._mask
        self.shifted += 1

    def snapshot(self):
        """Current (value, shifted) state, for speculative repair."""
        return (self.value, self.shifted)

    def restore(self, snapshot):
        """Roll back to a previously captured snapshot (mispredict repair)."""
        self.value, self.shifted = snapshot

    def low_bits(self, count):
        """The *count* most recent directions (LSB = most recent)."""
        if count > self.bits:
            raise ValueError("asked for %d bits from a %d-bit register"
                             % (count, self.bits))
        return self.value & ((1 << count) - 1)


def history_bits_list(value, count):
    """Expand *count* low bits of a history value into [most_recent, ...]."""
    return [(value >> k) & 1 for k in range(count)]
