"""Small shared utilities: deterministic RNG helpers and bit manipulation."""

from repro.utils.bitops import mask_bits, sign_extend, to_signed, to_unsigned
from repro.utils.rng import SamplingRng

__all__ = [
    "SamplingRng",
    "mask_bits",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
