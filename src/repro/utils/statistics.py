"""Small statistics helpers (rank correlation, summaries).

Self-contained implementations keep the package importable without scipy;
the tests cross-check them against scipy where it is available.
"""

import math

from repro.errors import AnalysisError


def mean(values):
    values = list(values)
    if not values:
        raise AnalysisError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values):
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def mean_confidence_interval(values, z=1.96):
    """``(mean, low, high)`` normal-approximation CI of the mean.

    ``low/high = mean -/+ z * sd / sqrt(n)`` with the sample standard
    deviation (n-1).  A single value (or identical replicates) collapses
    to a point interval — the right answer for deterministic replicates,
    where the interval only widens once inputs actually vary.
    """
    values = list(values)
    m = mean(values)
    half = z * stddev(values) / math.sqrt(len(values))
    return m, m - half, m + half


def pearson(xs, ys):
    """Pearson correlation coefficient of two equal-length sequences."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise AnalysisError("sequences differ in length")
    if len(xs) < 2:
        raise AnalysisError("need >= 2 points for correlation")
    mx = mean(xs)
    my = mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0.0 or vy == 0.0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def _ranks(values):
    """Average ranks (1-based), ties averaged."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks


def spearman(xs, ys):
    """Spearman rank correlation (Pearson over average ranks)."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise AnalysisError("sequences differ in length")
    return pearson(_ranks(xs), _ranks(ys))


def percentile(values, fraction):
    """Nearest-rank percentile; *fraction* in [0, 1]."""
    values = sorted(values)
    if not values:
        raise AnalysisError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise AnalysisError("fraction must be in [0, 1]")
    index = min(len(values) - 1, max(0, math.ceil(fraction * len(values)) - 1))
    return values[index]
