"""Deterministic random-number helpers for sampling hardware and workloads.

Every stochastic component in the package (sampling-interval randomization,
synthetic workload generation, Monte-Carlo estimator experiments) draws from
a seeded ``SamplingRng`` so that simulations are exactly reproducible.
"""

import random


class SamplingRng:
    """A seeded random source with the draws the profiling hardware needs.

    The ProfileMe paper requires the profiling *software* to write a
    pseudo-random value into the Fetched Instruction Counter at the start of
    each sampling interval (section 4.1.1), and to randomize both the major
    and minor intervals for paired sampling (section 4.2).  This class
    centralizes those draws.
    """

    def __init__(self, seed=0):
        self._random = random.Random(seed)
        self.seed = seed

    def interval(self, mean, jitter_fraction=0.5):
        """Draw a sampling interval around *mean*.

        Returns an integer uniform in ``[mean - d, mean + d]`` where
        ``d = floor(mean * j)``.  The window is symmetric so the expected
        interval is *exactly* the mean — the ``k * S`` estimator of
        section 5.1 relies on that.  Uniform jitter is what DCPI-style
        profilers use: it bounds the interval while breaking
        synchronization with loop periods.
        """
        if mean < 1:
            raise ValueError("mean interval must be >= 1, got %r" % (mean,))
        delta = int(mean * jitter_fraction)
        low = mean - delta
        high = mean + delta
        if low < 1:
            # Clamp symmetrically so the mean is preserved.
            high -= 1 - low
            low = 1
            high = max(high, low)
        return self._random.randint(low, high)

    def geometric_interval(self, mean):
        """Draw a geometrically distributed interval with the given mean.

        A geometric interval makes instruction selection memoryless —
        every fetched instruction is selected with probability 1/mean
        independently — which is exactly the "simple assumptions" under
        which section 5.1 derives cv = sqrt(1/E[k]).  Uniform jitter, by
        contrast, can correlate with loop periods and inflate the
        variance of per-PC sample counts.  Hardware realizes geometric
        intervals with an LFSR compared against a threshold.

        Caveat: a geometric draw is frequently *short*, so with a single
        Profile Register set many selections land while the previous
        sample is still in flight and are dropped, thinning the sample
        stream in a flight-time-correlated way.  Prefer geometric only
        when S is much larger than the in-flight time (or with enough
        register sets to overlap samples); otherwise uniform jitter with
        a minimum interval above the flight time is the unbiased choice.
        """
        import math

        if mean < 1:
            raise ValueError("mean interval must be >= 1, got %r" % (mean,))
        if mean == 1:
            return 1
        p = 1.0 / mean
        u = self._random.random()
        return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))

    def pair_distance(self, window):
        """Draw a minor (intra-pair) interval uniform in [1, window] (section 5.2.1)."""
        if window < 1:
            raise ValueError("pair window must be >= 1, got %r" % (window,))
        return self._random.randint(1, window)

    def randint(self, low, high):
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self):
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq):
        """Uniformly choose one element of *seq*."""
        return self._random.choice(seq)

    def shuffle(self, seq):
        """Shuffle *seq* in place."""
        self._random.shuffle(seq)

    def fork(self, tag):
        """Derive an independent child RNG identified by *tag*.

        Forking keeps independent subsystems (e.g. workload generation vs.
        sampling intervals) from perturbing each other's streams when one of
        them changes how many draws it makes.  The derivation uses crc32 so
        it is stable across processes (unlike ``hash`` on strings).
        """
        import zlib

        material = ("%r|%r" % (self.seed, tag)).encode("utf-8")
        return SamplingRng(zlib.crc32(material) & 0x7FFFFFFF)
