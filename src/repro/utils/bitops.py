"""Bit-manipulation helpers for 64-bit two's-complement arithmetic.

The ISA models a 64-bit machine; Python integers are unbounded, so every
architectural value is normalized to the range [0, 2**64) and reinterpreted
as signed only where the semantics require it (comparisons, shifts).
"""

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


def mask_bits(value, bits=WORD_BITS):
    """Truncate *value* to its low *bits* bits (unsigned result)."""
    return value & ((1 << bits) - 1)


def to_unsigned(value, bits=WORD_BITS):
    """Reinterpret a possibly-negative Python int as an unsigned *bits*-bit value."""
    return value & ((1 << bits) - 1)


def to_signed(value, bits=WORD_BITS):
    """Reinterpret the low *bits* bits of *value* as a signed two's-complement int."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def sign_extend(value, from_bits, to_bits=WORD_BITS):
    """Sign-extend the low *from_bits* bits of *value* to *to_bits* bits (unsigned repr)."""
    return to_unsigned(to_signed(value, from_bits), to_bits)
