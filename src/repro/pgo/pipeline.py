"""The orchestrated PGO loop: profile -> plan -> apply -> measure.

:func:`run_pgo` is the subsystem's single entry point (the ``repro
optimize`` CLI command is a thin shell over it):

1. **profile** — one profiling session per replicate seed, detailed or
   two-speed, all through :func:`~repro.engine.sweep.run_sweep` so a
   checkpoint store caches them;
2. **plan** — :func:`~repro.pgo.passes.plan_passes` per replicate, each
   requested pass in isolation plus (when more than one) the combined
   plan, with applicability guards recorded per pass;
3. **measure** — :func:`~repro.pgo.measure.measure_units` re-simulates
   baseline vs every replicate's optimized program under identical
   configs and reports cycle reductions with confidence intervals;
4. optionally **compare** — an exact-count ground-truth pipeline runs
   the same planning code and the sampled pipeline's decisions and
   speedup are checked against it inside the ``1/sqrt(k)`` envelope
   (:mod:`repro.pgo.compare`).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.convergence import effective_interval
from repro.engine.session import SessionSpec, run_session
from repro.engine.sweep import run_sweep
from repro.errors import AnalysisError, ConfigError
from repro.pgo.compare import build_comparison
from repro.pgo.measure import measure_units
from repro.pgo.passes import PASS_ORDER, plan_passes, resolve_passes
from repro.pgo.report import build_document
from repro.pgo.truth import database_from_truth
from repro.profileme.unit import ProfileMeConfig


@dataclass
class PgoOptions:
    """Everything that parameterizes one PGO pipeline run."""

    passes: Tuple[str, ...] = PASS_ORDER
    interval: int = 100  # mean sampling interval S
    replicates: int = 3  # profile-seed replicates (the CI source)
    seed: int = 1  # base sampling seed; replicate r uses seed + 101*r
    exec_mode: str = "detailed"  # profiling engine: detailed | two-speed
    window: int = 2000  # two-speed detailed-window size
    core_kind: str = "ooo"
    config: Any = None  # MachineConfig (None = per-core default)
    max_retired: Optional[int] = None
    keep_addresses: int = 0
    # Planning thresholds (see repro.analysis.optimize).
    lookahead: int = 6
    miss_threshold: float = 0.4
    min_samples: int = 5
    hint_min_samples: int = 4
    # Execution knobs (transport-only: never part of the report).
    jobs: int = 1
    store: Any = None  # ResultStore or directory path
    compare_truth: bool = False

    def __post_init__(self):
        if self.replicates < 1:
            raise ConfigError("replicates must be >= 1")
        if not self.passes:
            raise ConfigError("at least one PGO pass is required")
        resolve_passes(self.passes)  # typed error on unknown names

    def to_dict(self):
        """JSON-safe form for the report (execution knobs excluded)."""
        return {
            "passes": [name for name in PASS_ORDER
                       if name in self.passes],
            "interval": self.interval,
            "replicates": self.replicates,
            "seed": self.seed,
            "exec_mode": self.exec_mode,
            "window": self.window,
            "core_kind": self.core_kind,
            "max_retired": self.max_retired,
            "lookahead": self.lookahead,
            "miss_threshold": self.miss_threshold,
            "min_samples": self.min_samples,
            "hint_min_samples": self.hint_min_samples,
            "compare_truth": self.compare_truth,
        }


@dataclass
class PgoReport:
    """Everything one pipeline run produced."""

    workload: str
    options: PgoOptions
    plan: Any  # primary PlanResult (replicate 0, all requested passes)
    units: Dict[str, List[Any]]  # unit name -> per-replicate PlanResults
    measurements: List[Any]  # Measurement, same order as units
    effective_interval: float
    total_samples: int
    comparison: Any = None  # Comparison when compare_truth ran
    document: dict = field(default_factory=dict)

    def measurement_for(self, name):
        for measurement in self.measurements:
            if measurement.name == name:
                return measurement
        return None


def _profile_spec(program, options, replicate):
    profile = ProfileMeConfig(mean_interval=options.interval,
                              seed=options.seed + 101 * replicate)
    return SessionSpec(program=program,
                       core_kind=options.core_kind,
                       config=options.config,
                       profile=profile,
                       keep_records=False,
                       keep_addresses=options.keep_addresses,
                       max_retired=options.max_retired,
                       exec_mode=options.exec_mode,
                       window=options.window)


def _run_all(specs, options, what, progress=None):
    sweep = run_sweep(specs, workers=options.jobs, store=options.store,
                      progress=progress)
    failures = sweep.failures()
    if failures:
        first = failures[0]
        raise AnalysisError(
            "%d %s run(s) failed; first: %s"
            % (len(failures), what,
               (first.error or "unknown").strip().splitlines()[-1]))
    return sweep


def run_pgo(program, options=None, workload=None, progress=None):
    """Run the full PGO loop on *program*; return a :class:`PgoReport`.

    *workload* names the program in the report (defaults to
    ``program.name``).  *progress* is an optional callable receiving
    phase-event dicts (``{"phase": ..., ...}``) for CLI narration.
    """
    options = options or PgoOptions()
    workload = workload or program.name

    def _emit(event):
        if progress is not None:
            progress(event)

    # Phase 1: profile (one session per replicate seed).
    specs = [_profile_spec(program, options, replicate)
             for replicate in range(options.replicates)]
    _emit({"phase": "profile", "replicates": options.replicates,
           "exec_mode": options.exec_mode})
    sweep = _run_all(specs, options, "profiling", progress=None)
    profiles = [outcome.result for outcome in sweep.outcomes]
    databases = [result.database for result in profiles]
    for index, database in enumerate(databases):
        if database is None or database.total_samples == 0:
            raise AnalysisError(
                "profiling replicate %d collected no samples — interval "
                "%d is too long for this workload; shorten it or raise "
                "max_retired" % (index, options.interval))

    # The section 5.1 self-calibrated interval: fetched / samples from
    # the replicate-0 run.  Two-speed runs fast-forward most fetches
    # outside the detailed windows, so the configured interval (which
    # the functional engine honours exactly) is the right S there.
    if options.exec_mode == "detailed":
        interval = effective_interval(profiles[0].stats.fetched,
                                      databases[0].total_samples)
    else:
        interval = float(options.interval)

    # Phase 2: plan (each pass in isolation, plus combined).
    requested = [name for name in PASS_ORDER if name in options.passes]
    units = {}
    for name in requested:
        units[name] = [plan_passes(program, database, passes=(name,),
                                   options=options)
                       for database in databases]
    if len(requested) > 1:
        units["combined"] = [plan_passes(program, database,
                                         passes=tuple(requested),
                                         options=options)
                             for database in databases]
    primary_name = "combined" if len(requested) > 1 else requested[0]
    primary = units[primary_name][0]
    _emit({"phase": "plan", "units": list(units),
           "transformations": len(primary.transformations),
           "applied": list(primary.applied_passes)})

    # Phase 3: measure.
    _emit({"phase": "measure", "units": list(units)})
    measurements = measure_units(
        program, units, core_kind=options.core_kind,
        config=options.config, max_retired=options.max_retired,
        jobs=options.jobs, store=options.store)

    # Phase 4 (optional): ground-truth comparison.
    comparison = None
    if options.compare_truth:
        _emit({"phase": "compare"})
        truth_result = run_session(SessionSpec(
            program=program, core_kind=options.core_kind,
            config=options.config, collect_truth=True,
            keep_records=False, max_retired=options.max_retired))
        truth_database = database_from_truth(truth_result.truth, program)
        truth_plan = plan_passes(program, truth_database,
                                 passes=tuple(requested), options=options)
        truth_measurements = measure_units(
            program, {"truth": [truth_plan]},
            core_kind=options.core_kind, config=options.config,
            max_retired=options.max_retired, jobs=options.jobs,
            store=options.store)
        sampled_measurement = next(m for m in measurements
                                   if m.name == primary_name)
        comparison = build_comparison(
            primary, truth_plan, truth_database, program, interval,
            sampled_reduction=sampled_measurement.relative_reduction,
            truth_reduction=truth_measurements[0].relative_reduction)

    profile_info = {
        "interval": options.interval,
        "effective_interval": interval,
        "exec_mode": options.exec_mode,
        "replicates": options.replicates,
        "total_samples": databases[0].total_samples,
        "fetched": profiles[0].stats.fetched,
        "instructions_before": len(program.instructions),
    }
    document = build_document(workload, options, primary, profile_info,
                              measurements, comparison=comparison)
    return PgoReport(
        workload=workload,
        options=options,
        plan=primary,
        units=units,
        measurements=measurements,
        effective_interval=interval,
        total_samples=databases[0].total_samples,
        comparison=comparison,
        document=document)


def replicate_seeds(options):
    """The sampling seeds the pipeline uses, for external tooling."""
    return [options.seed + 101 * r for r in range(options.replicates)]


def options_from_args(args):
    """Build :class:`PgoOptions` from parsed ``repro optimize`` CLI args.

    Lives here (not in the CLI module) so the quick-mode defaults are
    testable without argparse.
    """
    passes = tuple(name.strip() for name in args.passes.split(",")
                   if name.strip()) if args.passes else PASS_ORDER
    replicates = args.seeds
    interval = args.interval
    max_retired = args.max_retired
    if getattr(args, "quick", False):
        replicates = min(replicates, 2)
        if max_retired is None:
            max_retired = 200_000
    return PgoOptions(
        passes=passes,
        interval=interval,
        replicates=replicates,
        seed=args.seed,
        exec_mode=args.mode,
        window=args.window,
        core_kind=args.core,
        max_retired=max_retired,
        lookahead=args.lookahead,
        jobs=args.jobs,
        store=args.checkpoint,
        compare_truth=args.compare_truth)
