"""Measured speedups: baseline vs optimized under identical conditions.

The simulator is deterministic, so a single baseline/optimized pair has
zero variance and proves nothing about robustness to sampling noise.
Measurement therefore works on *profile-seed replicates*: the pipeline
plans once per sampling seed, and every replicate's optimized program is
simulated under the identical machine config.  The confidence interval
is over the per-replicate cycle reductions — identical plans collapse to
a point interval (the deterministic-simulation limit), diverging plans
widen it honestly.

Measurement protocols:

* ``dynamic-predictor`` — relocating passes (layout, prefetch) are
  measured against the unmodified program on the default gshare
  machine: same config, same seeds, only the code differs.
* ``static-predictor`` — branch hints replace the direction predictor,
  so hinted runs are measured against a *static BTFN* baseline
  (``static_branch_hints=()``); comparing a hinted static machine
  against gshare would conflate predictor class with the
  transformation.

All runs go through :func:`repro.engine.sweep.run_sweep`, deduplicated
by ``spec_key`` first — identical plans across replicates cost one
simulation, and a checkpoint store makes re-measurement free.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.engine.session import SessionSpec
from repro.engine.sweep import run_sweep, spec_key
from repro.errors import AnalysisError
from repro.utils.statistics import mean_confidence_interval

PROTOCOL_DYNAMIC = "dynamic-predictor"
PROTOCOL_STATIC = "static-predictor"


@dataclass(frozen=True)
class Measurement:
    """Measured effect of one unit (a pass in isolation, or combined)."""

    name: str  # "layout" | "prefetch" | "hints" | "combined"
    protocol: str  # PROTOCOL_DYNAMIC | PROTOCOL_STATIC
    baseline_cycles: int
    optimized_cycles: Tuple[int, ...]  # one per replicate
    reductions: Tuple[int, ...]  # baseline - optimized, per replicate
    mean_reduction: float
    relative_reduction: float  # mean_reduction / baseline_cycles
    ci_low: float
    ci_high: float
    significant: bool  # CI excludes zero on the improvement side

    def to_dict(self):
        return {
            "name": self.name,
            "protocol": self.protocol,
            "baseline_cycles": self.baseline_cycles,
            "optimized_cycles": list(self.optimized_cycles),
            "reductions": list(self.reductions),
            "mean_reduction": self.mean_reduction,
            "relative_reduction": self.relative_reduction,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "significant": self.significant,
            "replicates": len(self.reductions),
        }


def _measurement_spec(program, hints, core_kind, config, max_retired):
    return SessionSpec(program=program, core_kind=core_kind, config=config,
                       max_retired=max_retired, keep_records=False,
                       static_branch_hints=hints)


def measure_units(program, units, core_kind="ooo", config=None,
                  max_retired=None, jobs=1, store=None, progress=None):
    """Measure every unit's cycle reduction; return ``[Measurement]``.

    *units* is an ordered mapping ``name -> [PlanResult, ...]`` with one
    plan per profile-seed replicate.  A unit where any replicate applied
    branch hints is measured under the static-predictor protocol (all
    its runs, including the baseline, on the static machine); purely
    relocating units use the dynamic baseline.

    Every simulation failure is fatal: a Measurement never silently
    averages over missing replicates.
    """
    specs = []
    keys = {}

    def _register(spec):
        key = spec_key(spec)
        if key not in keys:
            keys[key] = len(specs)
            specs.append(spec)
        return key

    unit_runs = []  # (name, protocol, baseline_key, [optimized_key, ...])
    for name, plans in units.items():
        if not plans:
            raise AnalysisError("unit %r has no planned replicates" % name)
        static = any(plan.hints is not None for plan in plans)
        protocol = PROTOCOL_STATIC if static else PROTOCOL_DYNAMIC
        baseline_hints = () if static else None
        baseline_key = _register(_measurement_spec(
            program, baseline_hints, core_kind, config, max_retired))
        optimized_keys = []
        for plan in plans:
            hints = plan.hints
            if static and hints is None:
                hints = ()
            optimized_keys.append(_register(_measurement_spec(
                plan.program, hints, core_kind, config, max_retired)))
        unit_runs.append((name, protocol, baseline_key, optimized_keys))

    sweep = run_sweep(specs, workers=jobs, store=store, progress=progress)
    failures = sweep.failures()
    if failures:
        first = failures[0]
        raise AnalysisError(
            "%d measurement run(s) failed; first (%s): %s"
            % (len(failures), first.spec.program.name,
               (first.error or "unknown").strip().splitlines()[-1]))
    cycles_by_key = {outcome.key: outcome.result.cycles
                     for outcome in sweep.outcomes}

    measurements = []
    for name, protocol, baseline_key, optimized_keys in unit_runs:
        baseline = cycles_by_key[baseline_key]
        optimized = tuple(cycles_by_key[key] for key in optimized_keys)
        reductions = tuple(baseline - cycles for cycles in optimized)
        mean, low, high = mean_confidence_interval(reductions)
        measurements.append(Measurement(
            name=name,
            protocol=protocol,
            baseline_cycles=baseline,
            optimized_cycles=optimized,
            reductions=reductions,
            mean_reduction=mean,
            relative_reduction=(mean / baseline) if baseline else 0.0,
            ci_low=low,
            ci_high=high,
            significant=low > 0.0))
    return measurements
