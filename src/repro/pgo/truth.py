"""Ground-truth adapter: exact counts in ProfileDatabase clothing.

The sampled-vs-ground-truth comparison (:mod:`repro.pgo.compare`) wants
to run the *same* planning code on exact counts that it runs on sampled
profiles.  :func:`database_from_truth` synthesizes a
:class:`~repro.analysis.database.ProfileDatabase` from a
:class:`~repro.analysis.groundtruth.GroundTruthCollector`, with every
fetched instruction standing in for one "sample":

* ``samples`` = exact fetched count, so the database's implied sampling
  interval is 1 (``total_samples`` = total fetched);
* event counts are the collector's exact counts (``RETIRED``/``ABORTED``
  from the dedicated counters, the rest from its tracked-event table);
* ``taken_count`` is the exact ``BRANCH_TAKEN`` count, making the
  direction ratio the true one;
* the ``load_issue_to_completion`` latency aggregate is synthesized for
  load PCs from the collector's fetch->retire-ready sums, so
  :func:`~repro.analysis.optimize.classify_loads` sees the exact
  retired-instance count and a meaningful (if differently-defined) mean
  latency.  The classifier only thresholds on count and the D-miss
  fraction, both exact here.
"""

from repro.analysis.database import (LatencyAggregate, PcProfile,
                                     ProfileDatabase)
from repro.events import Event


def database_from_truth(truth, program=None):
    """Build an exact-count ProfileDatabase from *truth*.

    *program* (optional) restricts the synthetic load-latency aggregate
    to PCs that are actually loads, keeping
    :func:`~repro.analysis.optimize.classify_loads` output clean; without
    it every PC with latency data gets one (harmless for planning, which
    re-checks opcodes).
    """
    database = ProfileDatabase()
    for pc, pc_truth in truth.per_pc.items():
        profile = PcProfile(pc=pc)
        profile.samples = pc_truth.fetched
        if pc_truth.retired:
            profile.events[Event.RETIRED] = pc_truth.retired
        if pc_truth.aborted:
            profile.events[Event.ABORTED] = pc_truth.aborted
        for flag, count in pc_truth.events.items():
            if count:
                profile.events[flag] = (profile.events.get(flag, 0)
                                        + count)
        profile.taken_count = pc_truth.events.get(Event.BRANCH_TAKEN, 0)
        if pc_truth.latency_count:
            is_load = (program is None
                       or (program.contains_pc(pc)
                           and program.fetch(pc).is_load))
            if is_load:
                aggregate = LatencyAggregate()
                aggregate.count = pc_truth.latency_count
                aggregate.total = pc_truth.latency_sum
                # Sum of squares is not tracked exactly; the planners
                # never read the variance, so zero is safe here.
                aggregate.total_sq = 0
                profile.latencies["load_issue_to_completion"] = aggregate
        database.per_pc[pc] = profile
        database.total_samples += profile.samples
    return database
