"""The machine-readable PGO report (``repro-pgo-report`` documents).

One pipeline run produces one versioned JSON document: what was
profiled, what each pass decided (or why it was skipped), what the
measurements showed, and — when the ground-truth comparison ran — the
envelope verdict.  Persistence (atomic write, typed load errors) lives
in :mod:`repro.analysis.persistence`; this module defines the document
shape and a schema extractor the CI smoke job diffs against a committed
schema file, so accidental format drift fails loudly.

Documents are deterministic for deterministic runs (no timestamps): two
identical pipeline invocations produce byte-identical canonical JSON.
"""

from repro.analysis.persistence import PGO_REPORT_FORMAT_VERSION


def build_document(workload, options, plan, profile_info, measurements,
                   comparison=None):
    """Assemble the ``repro-pgo-report`` document as a plain dict."""
    document = {
        "format": "repro-pgo-report",
        "version": PGO_REPORT_FORMAT_VERSION,
        "workload": workload,
        "options": options.to_dict(),
        "profile": dict(profile_info),
        "program": {
            "name": plan.program.name,
            "instructions_after": len(plan.program.instructions),
        },
        "passes": [report.to_dict() for report in plan.reports],
        "measurements": [m.to_dict() for m in measurements],
    }
    if comparison is not None:
        document["comparison"] = comparison.to_dict()
    return document


def document_schema(document):
    """Sorted key paths of *document*: the CI drift-detection form.

    Dict keys become dotted path segments; list elements collapse to a
    single ``[]`` segment (schemas describe shape, not cardinality).
    Leaf paths carry the JSON type name, so a field silently changing
    from number to string is also drift.
    """
    paths = set()

    def _walk(value, prefix):
        if isinstance(value, dict):
            if not value:
                paths.add(prefix + ": object")
                return
            for key, item in value.items():
                _walk(item, "%s.%s" % (prefix, key) if prefix else key)
        elif isinstance(value, list):
            if not value:
                paths.add(prefix + "[]")
                return
            for item in value:
                _walk(item, prefix + "[]")
        else:
            if isinstance(value, bool):
                kind = "boolean"
            elif value is None:
                kind = "null"
            elif isinstance(value, (int, float)):
                kind = "number"
            else:
                kind = "string"
            paths.add("%s: %s" % (prefix, kind))

    _walk(document, "")
    return sorted(paths)
