"""Typed PGO passes and the pass manager that chains them.

Each pass turns one aspect of a :class:`~repro.analysis.database.
ProfileDatabase` into concrete program transformations:

* ``layout`` — hot-first function reordering from sampled I-cache heat
  (section 7's "improved code layout");
* ``prefetch`` — PREFETCH insertion ahead of sampled missing loads with
  statically detectable strides (Abraham & Rau classification);
* ``hints`` — profile-guided static branch hints from sampled direction
  ratios (Young & Smith-style; measured on a static-predictor machine).

Two invariants the manager enforces:

1. **Applicability guards** — a pass that cannot run on a program (a
   relocating pass on a jump-table/JMP program) raises a typed
   :class:`PassNotApplicable` naming the offending PCs *before* any
   transformation starts; the pipeline records the skip instead of
   corrupting the program.
2. **Original-PC planning** — the profile database is keyed by the
   *original* program's PCs.  Every pass plans against the original
   program and the manager carries an original-PC -> current-PC remap
   across passes, so a prefetch plan computed before layout moved the
   code still lands on the right load.
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.optimize import (branch_hints_from_profile,
                                     function_heat,
                                     insert_prefetches_with_map,
                                     layout_order_from_profile,
                                     plan_prefetches,
                                     reorder_functions_with_map)
from repro.errors import AnalysisError, RelocationError
from repro.events import Event
from repro.isa.relocation import ensure_relocatable

PASS_ORDER = ("layout", "prefetch", "hints")

# Pass-report statuses.
STATUS_APPLIED = "applied"  # produced transformations
STATUS_EMPTY = "empty"  # applicable, but the profile asked for nothing
STATUS_SKIPPED = "skipped"  # applicability guard refused the pass


class PassNotApplicable(AnalysisError):
    """A PGO pass cannot run on this program.

    ``pass_name``/``reason`` describe the guard that fired; ``pcs``
    names the offending instructions (e.g. indirect jumps for the
    relocating passes) so reports stay actionable.
    """

    def __init__(self, pass_name, reason, pcs=()):
        super().__init__("pass %r not applicable: %s" % (pass_name, reason))
        self.pass_name = pass_name
        self.reason = reason
        self.pcs = tuple(pcs)


@dataclass(frozen=True)
class Transformation:
    """One planned program change, in machine-comparable form.

    ``detail`` is the *decision* — what the pass chose to do, pinned to
    the original program's PC.  ``evidence`` carries the sampled
    magnitudes that drove the decision (sample counts, miss fractions).
    The sampled-vs-ground-truth comparison equates decisions and checks
    evidence only statistically (within the ``1/sqrt(k)`` envelope), so
    the two are kept apart.
    """

    kind: str  # "layout" | "prefetch" | "hint"
    pc: int  # anchor PC in the *original* program
    detail: Tuple[Tuple[str, Any], ...]
    evidence: Tuple[Tuple[str, Any], ...] = ()

    @property
    def decision(self):
        """Hashable identity for cross-pipeline decision comparison."""
        return (self.kind, self.pc, self.detail)

    @property
    def matching_samples(self):
        """The ``k`` of this decision: samples carrying its property."""
        for key, value in self.evidence:
            if key == "k":
                return value
        return 0

    def to_dict(self):
        return {"kind": self.kind, "pc": self.pc,
                "detail": dict(self.detail),
                "evidence": dict(self.evidence)}


@dataclass
class PassReport:
    """What one pass did (or why it did nothing)."""

    name: str
    status: str  # STATUS_APPLIED / STATUS_EMPTY / STATUS_SKIPPED
    reason: Optional[str] = None  # for skipped
    pcs: Tuple[int, ...] = ()  # offending PCs for skipped
    transformations: Tuple[Transformation, ...] = ()

    def to_dict(self):
        document = {"name": self.name, "status": self.status,
                    "reason": self.reason, "pcs": list(self.pcs),
                    "transformations": [t.to_dict()
                                        for t in self.transformations]}
        return document


@dataclass
class PlanResult:
    """The pass manager's output: optimized program + full provenance."""

    program: Any  # the transformed Program
    remap: Dict[int, int]  # original PC -> final PC
    reports: List[PassReport] = field(default_factory=list)
    # Static branch hints for the *final* program's PCs; non-None iff
    # the hints pass applied (the measurement layer then compares
    # static-BTFN baseline vs static-hinted machine).
    hints: Optional[Tuple[Tuple[int, bool], ...]] = None

    @property
    def transformations(self):
        return tuple(t for report in self.reports
                     for t in report.transformations)

    @property
    def applied_passes(self):
        return tuple(r.name for r in self.reports
                     if r.status == STATUS_APPLIED)

    def report_for(self, name):
        for report in self.reports:
            if report.name == name:
                return report
        return None

    def decisions(self):
        """All decisions, as a set, for cross-pipeline comparison."""
        return {t.decision for t in self.transformations}


# ----------------------------------------------------------------------
# Pass implementations.


class LayoutPass:
    """Hot-first function reordering from sampled I-cache heat."""

    name = "layout"
    relocates = True
    static_machine = False

    def plan(self, original, database, options):
        order = layout_order_from_profile(database, original)
        existing = [name for name, _ in
                    sorted(original.functions.items(),
                           key=lambda kv: kv[1][0])]
        if order == existing:
            return None, ()
        heat = dict(function_heat(database, original,
                                  event=Event.ICACHE_MISS))
        samples = dict(function_heat(database, original,
                                     event=Event.RETIRED))
        transformations = tuple(
            Transformation(
                kind="layout",
                pc=original.functions[name][0],
                detail=(("function", name), ("position", position)),
                evidence=(("k", heat.get(name, 0)),
                          ("icache_miss_samples", heat.get(name, 0)),
                          ("retired_samples", samples.get(name, 0))))
            for position, name in enumerate(order))
        return order, transformations

    def apply(self, current, order, remap):
        relocated, delta = reorder_functions_with_map(current, order)
        return relocated, {pc: delta[cur] for pc, cur in remap.items()}


class PrefetchPass:
    """PREFETCH insertion ahead of sampled missing strided loads."""

    name = "prefetch"
    relocates = True
    static_machine = False

    def plan(self, original, database, options):
        plans = plan_prefetches(original, database,
                                lookahead=options.lookahead,
                                miss_threshold=options.miss_threshold,
                                min_samples=options.min_samples)
        if not plans:
            return None, ()
        transformations = []
        for plan in plans:
            profile = database.per_pc.get(plan.load_pc)
            misses = profile.event_count(Event.DCACHE_MISS) if profile else 0
            transformations.append(Transformation(
                kind="prefetch",
                pc=plan.load_pc,
                detail=(("base_reg", plan.base_reg),
                        ("displacement", plan.displacement),
                        ("stride", plan.stride)),
                evidence=(("k", misses),
                          ("dcache_miss_samples", misses),
                          ("miss_fraction", plan.miss_fraction))))
        return plans, tuple(transformations)

    def apply(self, current, plans, remap):
        moved = [dataclasses.replace(plan, load_pc=remap[plan.load_pc])
                 for plan in plans]
        relocated, delta = insert_prefetches_with_map(current, moved)
        return relocated, {pc: delta[cur] for pc, cur in remap.items()}


class HintPass:
    """Profile-guided static branch hints (direction overrides of BTFN).

    Applies no program transformation; its output is the hint table the
    measurement layer feeds to a static-predictor machine.  Only hints
    that *override* the BTFN default are decisions — a hint agreeing
    with BTFN changes nothing.
    """

    name = "hints"
    relocates = False
    static_machine = True

    def plan(self, original, database, options):
        hints = branch_hints_from_profile(
            database, original, min_samples=options.hint_min_samples)
        overrides = {}
        transformations = []
        for pc in sorted(hints):
            taken = hints[pc]
            btfn = original.fetch(pc).target < pc
            if taken == btfn:
                continue
            overrides[pc] = taken
            profile = database.per_pc[pc]
            transformations.append(Transformation(
                kind="hint",
                pc=pc,
                detail=(("taken", taken),),
                evidence=(("k", profile.taken_count),
                          ("taken_samples", profile.taken_count),
                          ("retired_samples",
                           profile.event_count(Event.RETIRED)))))
        if not overrides:
            return None, ()
        return overrides, tuple(transformations)

    def apply(self, current, overrides, remap):
        # No relocation; the hints ride on PlanResult.hints instead.
        return current, remap


PASS_REGISTRY = {
    LayoutPass.name: LayoutPass,
    PrefetchPass.name: PrefetchPass,
    HintPass.name: HintPass,
}


def resolve_passes(names):
    """Pass instances for *names*, in canonical PASS_ORDER."""
    unknown = [name for name in names if name not in PASS_REGISTRY]
    if unknown:
        raise AnalysisError("unknown PGO pass(es): %s (known: %s)"
                            % (", ".join(sorted(unknown)),
                               ", ".join(PASS_ORDER)))
    return [PASS_REGISTRY[name]() for name in PASS_ORDER if name in names]


# ----------------------------------------------------------------------
# The pass manager.


def plan_passes(program, database, passes=PASS_ORDER, options=None):
    """Run *passes* over *program* guided by *database*.

    Returns a :class:`PlanResult`.  Passes always execute in canonical
    :data:`PASS_ORDER` regardless of the order given.  *database* must
    be keyed by *program*'s (original) PCs; every pass plans against the
    original program and the manager chains PC remaps so later passes'
    plans survive earlier relocations.  A pass refused by its
    applicability guard is recorded as skipped — it never half-applies.

    *options* carries the planning thresholds
    (:class:`repro.pgo.pipeline.PgoOptions` or anything with the same
    attributes); ``None`` uses the defaults.
    """
    if options is None:
        from repro.pgo.pipeline import PgoOptions

        options = PgoOptions()
    current = program
    remap = {pc: pc for pc, _ in program.listing()}
    remap[program.pc_limit] = program.pc_limit
    result = PlanResult(program=program, remap=remap)
    for instance in resolve_passes(passes):
        try:
            if instance.relocates:
                try:
                    ensure_relocatable(
                        current, operation="apply PGO pass %r to"
                        % instance.name)
                except RelocationError as exc:
                    raise PassNotApplicable(instance.name, str(exc),
                                            pcs=exc.pcs) from exc
            plan, transformations = instance.plan(program, database,
                                                  options)
        except PassNotApplicable as exc:
            result.reports.append(PassReport(
                name=instance.name, status=STATUS_SKIPPED,
                reason=exc.reason, pcs=exc.pcs))
            continue
        if plan is None:
            result.reports.append(PassReport(
                name=instance.name, status=STATUS_EMPTY))
            continue
        current, remap = instance.apply(current, plan, remap)
        if instance.static_machine:
            result.hints = tuple(sorted(
                (remap[pc], taken) for pc, taken in plan.items()))
        result.reports.append(PassReport(
            name=instance.name, status=STATUS_APPLIED,
            transformations=transformations))
    result.program = current
    result.remap = remap
    return result
