"""Profile-guided optimization: close the profile -> speedup loop.

Section 7 of the paper motivates ProfileMe entirely by what optimizers
can do with instruction-level profiles.  This package wires the existing
transformation primitives (:mod:`repro.analysis.optimize`) into an
end-to-end, *measured* loop:

1. **profile** a workload via :class:`~repro.engine.session.SessionSpec`
   (two-speed mode for scale, detailed for ground truth);
2. **plan** — a pass manager (:mod:`repro.pgo.passes`) turns the profile
   database into ordered typed transformations with per-pass
   applicability guards;
3. **apply** — produce a relocated/relinked
   :class:`~repro.isa.program.Program` plus a machine-readable
   transformation report;
4. **measure** (:mod:`repro.pgo.measure`) — re-simulate baseline vs
   optimized under identical configs and seeds and report the cycle
   reduction with confidence intervals from profile-seed replicates.

The headline experiment (:mod:`repro.pgo.compare`) checks that PGO
driven by *sampled* profiles makes the same decisions — and wins the
same speedup — as PGO driven by exact ground-truth counts, within the
paper's ``1 +- 1/sqrt(k)`` envelope.

Entry points: :func:`repro.pgo.pipeline.run_pgo` (library),
``repro optimize`` (CLI).
"""

from repro.pgo.passes import (PASS_ORDER, PassNotApplicable, PassReport,
                              PlanResult, Transformation, plan_passes)
from repro.pgo.pipeline import PgoOptions, PgoReport, run_pgo

__all__ = [
    "PASS_ORDER",
    "PassNotApplicable",
    "PassReport",
    "PlanResult",
    "Transformation",
    "plan_passes",
    "PgoOptions",
    "PgoReport",
    "run_pgo",
]
