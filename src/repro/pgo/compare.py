"""Sampled-profile PGO vs ground-truth PGO: the headline comparison.

The paper's claim is that sampled estimates converge on the truth like
``1 +- 1/sqrt(k)`` (Figure 3).  Applied to PGO, that means a pipeline
fed *sampled* profiles should (a) make the decisions a pipeline fed
*exact* counts makes — abstaining, not contradicting, where it lacks
samples — and (b) win the same measured speedup, up to the sampling
envelope of its least-sampled decision.

Decision semantics per pass:

* a sampled decision **matches** when the truth pipeline made a decision
  with the same kind/PC/detail;
* it **conflicts** when the truth pipeline decided differently at the
  same anchor (same kind and PC, different detail);
* truth-only decisions are expected — exact counts clear the planning
  thresholds everywhere, sampling only where the profiler looked.  They
  are counted, never treated as errors.

Evidence is compared statistically: each sampled decision's ``k``
matching samples estimate the underlying true count as ``k * S``
(section 5.1), and the per-decision ratio against the exact count must
sit inside ``1 +- 1/sqrt(k)``.  The speedup comparison reuses the same
envelope with ``k_min``, the smallest ``k`` among the sampled decisions.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.estimators import relative_error_envelope
from repro.events import Event

# Which evidence key holds the quantity behind a decision's `k` samples,
# per transformation kind, and the event flag giving its exact count.
_QUANTITY_KEYS = {
    "layout": ("icache_miss_samples", Event.ICACHE_MISS),
    "prefetch": ("dcache_miss_samples", Event.DCACHE_MISS),
    "hint": ("taken_samples", None),  # taken_count, not an event flag
}


@dataclass(frozen=True)
class EnvelopeRow:
    """One sampled decision's estimate vs the exact count."""

    kind: str
    pc: int
    quantity: str
    k: int  # matching samples behind the decision
    estimate: float  # k * effective interval
    actual: int  # exact count from the ground-truth profile
    ratio: float
    within: bool

    def to_dict(self):
        return {"kind": self.kind, "pc": self.pc,
                "quantity": self.quantity, "k": self.k,
                "estimate": self.estimate, "actual": self.actual,
                "ratio": self.ratio, "within": self.within}


@dataclass
class PassDecisionComparison:
    """Decision agreement for one pass."""

    name: str
    sampled: int  # decisions the sampled pipeline made
    truth: int  # decisions the truth pipeline made
    matched: int  # sampled decisions the truth pipeline also made
    conflicts: List[dict] = field(default_factory=list)

    @property
    def agreement(self):
        """Every sampled decision is a truth decision (no conflicts)."""
        return self.matched == self.sampled and not self.conflicts

    def to_dict(self):
        return {"name": self.name, "sampled": self.sampled,
                "truth": self.truth, "matched": self.matched,
                "conflicts": list(self.conflicts),
                "agreement": self.agreement}


@dataclass
class Comparison:
    """Full sampled-vs-ground-truth verdict."""

    per_pass: List[PassDecisionComparison]
    envelope_rows: List[EnvelopeRow]
    envelope_fraction: Optional[float]  # rows inside 1 +- 1/sqrt(k)
    decisions_agree: bool
    k_min: int  # smallest k among sampled decisions
    envelope_half: float  # 1/sqrt(k_min)
    sampled_reduction: float  # combined relative cycle reduction
    truth_reduction: float
    speedup_ratio: Optional[float]  # sampled / truth reduction
    speedup_within_envelope: bool

    def to_dict(self):
        return {
            "per_pass": [c.to_dict() for c in self.per_pass],
            "envelope_rows": [r.to_dict() for r in self.envelope_rows],
            "envelope_fraction": self.envelope_fraction,
            "decisions_agree": self.decisions_agree,
            "k_min": self.k_min,
            "envelope_half": self.envelope_half,
            "sampled_reduction": self.sampled_reduction,
            "truth_reduction": self.truth_reduction,
            "speedup_ratio": self.speedup_ratio,
            "speedup_within_envelope": self.speedup_within_envelope,
        }


def compare_decisions(sampled_plan, truth_plan):
    """Per-pass decision agreement between the two pipelines."""
    comparisons = []
    truth_by_anchor = {(t.kind, t.pc): t
                       for t in truth_plan.transformations}
    truth_decisions = truth_plan.decisions()
    for report in sampled_plan.reports:
        truth_report = truth_plan.report_for(report.name)
        truth_count = (len(truth_report.transformations)
                       if truth_report is not None else 0)
        matched = 0
        conflicts = []
        for t in report.transformations:
            if t.decision in truth_decisions:
                matched += 1
                continue
            other = truth_by_anchor.get((t.kind, t.pc))
            if other is not None:
                conflicts.append({"kind": t.kind, "pc": t.pc,
                                  "sampled": dict(t.detail),
                                  "truth": dict(other.detail)})
        comparisons.append(PassDecisionComparison(
            name=report.name, sampled=len(report.transformations),
            truth=truth_count, matched=matched, conflicts=conflicts))
    return comparisons


def _truth_quantity(truth_database, program, transformation):
    """Exact count of the quantity behind one sampled decision.

    Per-PC kinds read the decision's anchor PC straight from the truth
    database; layout decisions cover a whole function, so their exact
    heat sums the function's extent in the *original* program.
    """
    quantity, flag = _QUANTITY_KEYS[transformation.kind]
    if quantity == "taken_samples":
        profile = truth_database.per_pc.get(transformation.pc)
        return profile.taken_count if profile else 0
    if transformation.kind == "layout":
        name = dict(transformation.detail)["function"]
        start, end = program.functions[name]
        return sum(profile.event_count(flag)
                   for pc, profile in truth_database.per_pc.items()
                   if start <= pc < end)
    profile = truth_database.per_pc.get(transformation.pc)
    return profile.event_count(flag) if profile else 0


def envelope_rows(sampled_plan, truth_database, program,
                  effective_interval):
    """Per-decision kS estimates vs exact counts, with envelope verdicts.

    Rows with zero sampled ``k`` or zero exact count are skipped — a
    ratio against zero is undefined, and such a mismatch surfaces as a
    decision conflict instead.
    """
    rows = []
    for t in sampled_plan.transformations:
        if t.kind not in _QUANTITY_KEYS:
            continue
        k = t.matching_samples
        if k <= 0:
            continue
        actual = _truth_quantity(truth_database, program, t)
        if actual <= 0:
            continue
        quantity = _QUANTITY_KEYS[t.kind][0]
        estimate = k * effective_interval
        ratio = estimate / actual
        half = relative_error_envelope(k)
        rows.append(EnvelopeRow(
            kind=t.kind, pc=t.pc, quantity=quantity, k=k,
            estimate=estimate, actual=actual, ratio=ratio,
            within=(1.0 - half <= ratio <= 1.0 + half)))
    return rows


def build_comparison(sampled_plan, truth_plan, truth_database, program,
                     effective_interval, sampled_reduction,
                     truth_reduction):
    """Assemble the full :class:`Comparison`.

    *sampled_reduction*/*truth_reduction* are the combined relative
    cycle reductions measured for the two pipelines' optimized programs
    (same baseline, same protocol).
    """
    per_pass = compare_decisions(sampled_plan, truth_plan)
    rows = envelope_rows(sampled_plan, truth_database, program,
                         effective_interval)
    fraction = None
    if rows:
        fraction = sum(1 for r in rows if r.within) / len(rows)
    ks = [t.matching_samples for t in sampled_plan.transformations
          if t.matching_samples > 0]
    k_min = min(ks) if ks else 0
    half = relative_error_envelope(k_min) if k_min else float("inf")
    ratio = None
    if truth_reduction > 0.0:
        ratio = sampled_reduction / truth_reduction
        within = 1.0 - half <= ratio <= 1.0 + half
    else:
        # No true win to match: the sampled pipeline agrees iff its own
        # relative effect sits inside the envelope around zero.
        within = abs(sampled_reduction - truth_reduction) <= half
    return Comparison(
        per_pass=per_pass,
        envelope_rows=rows,
        envelope_fraction=fraction,
        decisions_agree=all(c.agreement for c in per_pass),
        k_min=k_min,
        envelope_half=half,
        sampled_reduction=sampled_reduction,
        truth_reduction=truth_reduction,
        speedup_ratio=ratio,
        speedup_within_envelope=within)
