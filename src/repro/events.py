"""Per-instruction event flags.

This is the vocabulary of the paper's *Profiled Event Register* (section
4.1.3): "I-cache and D-cache miss, instruction and data TLB miss, branch
taken, branch mispredicted, various resource conflicts, memory traps,
whether the instruction retired, trap reason, etc."

The same flags are produced by the memory hierarchy, the cores, and the
event-counter baseline, so an event counter counting DCACHE_MISS and a
ProfileMe record reporting DCACHE_MISS are observing the same signal.
"""

import enum


class Event(enum.IntFlag):
    """Bit-field of events experienced by one dynamic instruction."""

    NONE = 0

    # Outcome (exactly one of these is set once the instruction leaves the
    # machine; the retired bit is what makes aborted instructions visible
    # to profiling software rather than silently discarded).
    RETIRED = enum.auto()
    ABORTED = enum.auto()

    # Memory system.
    ICACHE_MISS = enum.auto()
    DCACHE_MISS = enum.auto()
    L2_MISS = enum.auto()
    ITB_MISS = enum.auto()
    DTB_MISS = enum.auto()
    STORE_FORWARD = enum.auto()  # load serviced from the store queue

    # Control flow.
    BRANCH_TAKEN = enum.auto()
    MISPREDICT = enum.auto()  # this instruction was a mispredicted branch/jump

    # Resource conflicts (useful with the Table 1 latency registers).
    MAP_STALL_REGS = enum.auto()  # waited for free physical registers
    MAP_STALL_IQ = enum.auto()  # waited for an issue-queue slot
    MAP_STALL_ROB = enum.auto()  # waited for a reorder-buffer entry
    FU_CONFLICT = enum.auto()  # data-ready but no functional unit free
    LSQ_REPLAY = enum.auto()  # load waited on unresolved older store address

    # Speculation.
    BAD_PATH = enum.auto()  # fetched off the (eventually) correct path


class AbortReason(enum.Enum):
    """Why an instruction left the machine without retiring (trap reason)."""

    NONE = "none"  # instruction retired
    MISPREDICT_SQUASH = "mispredict"  # younger than a mispredicted branch
    FETCH_DISCARD = "fetch_discard"  # in a fetch block but off the predicted path
    INVALID_PC = "invalid_pc"  # speculative fetch from a garbage address
    DRAINED = "drained"  # still in flight when the simulation ended
