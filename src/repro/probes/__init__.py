"""Unified hierarchical probe/introspection registry.

One dotted namespace over every stat surface in the tree — cores
(``cpu0.core.retired``, ``cpu0.ooo.iq.occupancy``), memory
(``mem.l2.miss_rate``), branch prediction (``branch.mispredict_rate``),
counters (``counters.dcache_miss.events_counted``), ProfileMe
(``profileme.registers.pc``), and the profiling service
(``service.shard0.lag``) — with typed metadata, lazy cached reads, and
delta-since-subscription semantics.  See ``docs/architecture.md``,
"Probe registry".
"""

from repro.probes.props import (
    KIND_COUNTER,
    KIND_FRACTION,
    KIND_GAUGE,
    KINDS,
    ProbeProperty,
    ratio,
)
from repro.probes.registry import (
    ProbeRegistry,
    ProbeSubscription,
    validate_name,
)
from repro.probes.stream import ProbeStreamer

__all__ = [
    "KIND_COUNTER",
    "KIND_FRACTION",
    "KIND_GAUGE",
    "KINDS",
    "ProbeProperty",
    "ProbeRegistry",
    "ProbeStreamer",
    "ProbeSubscription",
    "ratio",
    "validate_name",
]
