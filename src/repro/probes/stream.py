"""Periodic probe sampling: `repro probes watch` and service streaming.

:class:`ProbeStreamer` is an ordinary :class:`~repro.cpu.probes.Probe`
that reads a wildcard slice of the attached core's probe registry every
*period* cycles and hands the readings to a sink (and/or keeps them).
Because registry reads are side-effect-free, attaching a streamer is
guaranteed not to change the machine's behaviour — the golden-corpus
guard in ``tests/probes`` pins that end to end.

The streamer subscribes only ``on_cycle_end``, so through the ProbeBus
it costs one integer compare per cycle between ticks; a machine with no
streamer attached pays nothing at all (the no-probe fast path).
"""

from repro.cpu.probes import Probe
from repro.errors import ConfigError


class ProbeStreamer(Probe):
    """Samples a registry slice every *period* cycles.

    *sink* is an optional ``callable(cycle, readings_dict)`` invoked on
    every tick (the service-streaming path); with *keep* (default) each
    tick is also appended to :attr:`ticks` as ``(cycle, readings)`` for
    local watching.  The registry is the attached core's own
    (``core.probe_registry()``), built lazily on attach.
    """

    def __init__(self, pattern="*", period=1000, sink=None, keep=True):
        if period < 1:
            raise ConfigError("streamer period must be >= 1, got %r"
                              % (period,))
        self.pattern = pattern
        self.period = period
        self.sink = sink
        self.keep = keep
        self.ticks = []  # [(cycle, {name: value}), ...]
        self.registry = None

    def attach(self, core):
        self.core = core
        self.registry = core.probe_registry()

    def on_cycle_end(self, cycle):
        if cycle % self.period:
            return
        self.sample(cycle)

    def sample(self, cycle):
        """Take one reading now (also called for a final flush)."""
        self.registry.invalidate()
        readings = self.registry.read_all(self.pattern)
        if self.keep:
            self.ticks.append((cycle, readings))
        if self.sink is not None:
            self.sink(cycle, readings)
        return readings
