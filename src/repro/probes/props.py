"""Typed probe properties: the unit of the introspection registry.

A :class:`ProbeProperty` is one named, typed, readable quantity — the
registry's equivalent of a hardware performance-counter register, but
with the metadata a tool needs to interpret it without out-of-band
knowledge (the Simics probes framework ships the same ``kind`` /
``unit`` / display metadata with every probe for exactly this reason):

* ``kind`` — how the value behaves over time:

  - ``counter``: monotonically non-decreasing count (cycles, hits,
    drops).  Deltas between two reads are meaningful; rates are
    ``delta / time-delta``.
  - ``gauge``: instantaneous level (queue occupancy, in-flight groups).
    Deltas are not meaningful; only the current value is.
  - ``fraction``: derived ratio in ``[0, 1]`` (miss rate, accuracy).
    Always recomputed from its underlying counters.

* ``unit`` — what one step of the value means (``"cycles"``,
  ``"accesses"``, ``"ratio"``, ...); presentation metadata only.

**The empty-denominator convention** lives here, in :func:`ratio`, and
every derived-rate stat surface in the tree routes through it: a rate
over zero events is defined as ``0.0``, never a ZeroDivisionError and
never NaN.  A freshly reset cache has no miss rate worth distinguishing
from "no misses", and profiling reads must be safe at any instant —
including cycle 0, mid-squash, or on a machine that never ran.
"""

from repro.errors import ConfigError

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_FRACTION = "fraction"

KINDS = (KIND_COUNTER, KIND_GAUGE, KIND_FRACTION)


def ratio(numerator, denominator):
    """The registry-wide empty-denominator convention for derived rates.

    Returns ``numerator / denominator`` as a float, or ``0.0`` when
    *denominator* is zero (or falsy).  Every ``fraction``-kind probe and
    every legacy rate property (cache miss rates, predictor accuracy)
    computes through this single definition, so "no events yet" reads
    the same everywhere: 0.0, not an exception.
    """
    if not denominator:
        return 0.0
    return numerator / denominator


class ProbeProperty:
    """One registered probe: a read callable plus typed metadata.

    Instances are created by :meth:`ProbeRegistry.register`; the
    ``read`` callable must be side-effect-free (reading a probe must
    never perturb the machine being observed — the golden-corpus guard
    enforces this end to end).
    """

    __slots__ = ("name", "read", "kind", "unit", "description")

    def __init__(self, name, read, kind=KIND_GAUGE, unit="", description=""):
        if kind not in KINDS:
            raise ConfigError("probe %r: kind must be one of %s, got %r"
                              % (name, "/".join(KINDS), kind))
        if not callable(read):
            raise ConfigError("probe %r: read must be callable" % (name,))
        self.name = name
        self.read = read
        self.kind = kind
        self.unit = unit
        self.description = description

    def properties(self):
        """JSON-safe metadata dict (Simics ``properties()`` idiom)."""
        return {"name": self.name, "kind": self.kind, "unit": self.unit,
                "description": self.description}

    def __repr__(self):
        return ("ProbeProperty(name=%r, kind=%r, unit=%r)"
                % (self.name, self.kind, self.unit))
