"""Hierarchical probe registry: one namespace over every stat surface.

Before this layer, each subsystem exposed its state ad hoc —
``Cache.miss_rate``, ``MemoryHierarchy.stats()``, counter attributes,
ProfileMe registers, ``ServerStats`` — with different shapes and no
discovery story.  :class:`ProbeRegistry` gives them all one contract:

* **Dotted hierarchical names** (``cpu0.ooo.iq.occupancy``,
  ``mem.l2.miss_rate``, ``service.shard0.lag``).  Segments are
  identifier-like (letters, digits, underscores); the grammar is
  enforced at registration so every tool can rely on it.
* **Register/unregister lifecycle** — providers register on attach and
  can be torn down (a whole subtree at once) when a unit detaches.
* **Lazy cached reads with explicit invalidation** — a read is computed
  once and served from cache until :meth:`invalidate` is called; the
  observers own the freshness policy, the providers pay nothing for
  repeated reads of derived values.
* **Wildcard/subtree enumeration** — ``names("cpu0.ooo.*")``,
  ``subtree("mem")`` — shell-style patterns via :mod:`fnmatch`.
* **Delta-since-subscription** — :meth:`subscribe` snapshots the
  current values; the subscription's :meth:`ProbeSubscription.deltas`
  reports counter movement since then (gauges/fractions report their
  current value), the Simics probes subscription model.

The registry holds *no* references into the machine beyond the read
closures the providers hand it, and reads must be side-effect-free:
observing a machine through the registry is guaranteed (and tested) not
to change a single cycle of its behaviour.
"""

import fnmatch
import re

from repro.errors import ConfigError
from repro.probes.props import KIND_COUNTER, ProbeProperty

_SEGMENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def validate_name(name):
    """Enforce the namespace grammar: dot-joined identifier segments."""
    if not isinstance(name, str) or not name:
        raise ConfigError("probe name must be a non-empty string, got %r"
                          % (name,))
    for segment in name.split("."):
        if not _SEGMENT.match(segment):
            raise ConfigError(
                "probe name %r: segment %r is not identifier-like "
                "(letters, digits, underscores; not starting with a digit)"
                % (name, segment))
    return name


class ProbeSubscription:
    """A baseline snapshot plus the movement since it was taken.

    Created by :meth:`ProbeRegistry.subscribe`; ``deltas()`` answers
    "what happened while I was watching" without the observer having to
    store and subtract snapshots itself.
    """

    __slots__ = ("registry", "pattern", "baseline", "active")

    def __init__(self, registry, pattern, baseline):
        self.registry = registry
        self.pattern = pattern
        self.baseline = baseline
        self.active = True

    def deltas(self, refresh=True):
        """Per-probe movement since subscription.

        Counters report ``current - baseline``; gauges and fractions
        report their current value (an instantaneous level has no
        meaningful delta).  Probes registered after the subscription
        report against a zero baseline; unregistered ones disappear.
        """
        current = self.registry.read_all(self.pattern, refresh=refresh)
        out = {}
        for name, value in current.items():
            prop = self.registry.property(name)
            if prop.kind == KIND_COUNTER and isinstance(value, (int, float)):
                out[name] = value - self.baseline.get(name, 0)
            else:
                out[name] = value
        return out

    def cancel(self):
        self.registry.unsubscribe(self)


class ProbeRegistry:
    """The hierarchical namespace of :class:`ProbeProperty` entries."""

    def __init__(self):
        self._props = {}  # name -> ProbeProperty, registration-ordered
        self._cache = {}  # name -> last computed value
        self._subscriptions = []

    # NOTE: defined before the `property(name)` accessor below shadows
    # the builtin decorator within this class body.
    @property
    def subscriber_count(self):
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Lifecycle.

    def register(self, name, read, kind="gauge", unit="", description=""):
        """Add one probe; returns its :class:`ProbeProperty`.

        Raises :class:`~repro.errors.ConfigError` on a malformed name or
        a name already registered — colliding providers are a wiring
        bug, never silently resolved.
        """
        validate_name(name)
        if name in self._props:
            raise ConfigError("probe %r is already registered" % (name,))
        prop = ProbeProperty(name, read, kind=kind, unit=unit,
                             description=description)
        self._props[name] = prop
        return prop

    def unregister(self, name):
        """Remove one probe (and its cached value)."""
        if name not in self._props:
            raise ConfigError("probe %r is not registered" % (name,))
        del self._props[name]
        self._cache.pop(name, None)

    def unregister_subtree(self, prefix):
        """Remove every probe under ``prefix.`` (and *prefix* itself).

        Returns the number of probes removed — a provider detaching
        tears down its whole subtree in one call.
        """
        doomed = [name for name in self._props
                  if name == prefix or name.startswith(prefix + ".")]
        for name in doomed:
            del self._props[name]
            self._cache.pop(name, None)
        return len(doomed)

    def __len__(self):
        return len(self._props)

    def __contains__(self, name):
        return name in self._props

    # ------------------------------------------------------------------
    # Enumeration.

    def names(self, pattern=None):
        """Matching names in sorted (namespace) order.

        *pattern* is a shell-style wildcard (``fnmatch``): ``"mem.*"``,
        ``"cpu?.core.retired"``, ``"*.miss_rate"``.  ``None`` (or
        ``"*"``) lists everything.  Sorted output groups a dotted
        subtree contiguously regardless of provider attach order.
        """
        if pattern is None or pattern == "*":
            return sorted(self._props)
        return sorted(name for name in self._props
                      if fnmatch.fnmatchcase(name, pattern))

    def subtree(self, prefix):
        """Names under ``prefix.`` (plus *prefix* itself if registered)."""
        return sorted(name for name in self._props
                      if name == prefix or name.startswith(prefix + "."))

    def property(self, name):
        """The :class:`ProbeProperty` behind *name*."""
        prop = self._props.get(name)
        if prop is None:
            raise ConfigError("probe %r is not registered" % (name,))
        return prop

    def properties(self, pattern=None):
        """Metadata dicts for every matching probe (no reads performed)."""
        return [self._props[name].properties()
                for name in self.names(pattern)]

    # ------------------------------------------------------------------
    # Reads: lazy, cached, explicitly invalidated.

    def read(self, name, refresh=False):
        """The probe's value — cached from the last read unless *refresh*.

        The cache makes repeated reads of derived values (fractions
        recomputed from counters) free between invalidations; callers
        that need machine-fresh values pass ``refresh=True`` or call
        :meth:`invalidate` at their own cadence (e.g. once per watch
        tick).
        """
        if not refresh and name in self._cache:
            return self._cache[name]
        value = self.property(name).read()
        self._cache[name] = value
        return value

    def read_all(self, pattern=None, refresh=False):
        """``{name: value}`` for every matching probe."""
        return {name: self.read(name, refresh=refresh)
                for name in self.names(pattern)}

    def invalidate(self, pattern=None):
        """Drop cached values (all of them, or those matching *pattern*)."""
        if pattern is None or pattern == "*":
            self._cache.clear()
            return
        for name in self.names(pattern):
            self._cache.pop(name, None)

    def snapshot(self, pattern=None, refresh=True):
        """``{name: {value, kind, unit, description}}`` — the persistable
        form (``SessionResult.probes``, the service's ``probes`` query).
        """
        out = {}
        for name in self.names(pattern):
            prop = self._props[name]
            out[name] = {"value": self.read(name, refresh=refresh),
                         "kind": prop.kind, "unit": prop.unit,
                         "description": prop.description}
        return out

    # ------------------------------------------------------------------
    # Delta-since-subscription.

    def subscribe(self, pattern=None):
        """Snapshot the current values; returns a :class:`ProbeSubscription`."""
        baseline = self.read_all(pattern, refresh=True)
        subscription = ProbeSubscription(self, pattern, baseline)
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription):
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)
        subscription.active = False
