"""Warm microarchitectural state shared between execution engines.

Two-speed simulation alternates a functional fast-forward with detailed
OOO windows.  The fast-forward has no pipeline, but it must keep the
*long-lived* microarchitectural state — caches, TLBs, branch-direction
counters, BTB, RAS, global history — warm, or every detailed window
would start from a cold machine and measure mostly compulsory misses.

:class:`WarmState` is the explicit contract: it names exactly the state
that crosses engine boundaries, and both the functional profiler and the
two-speed scheduler update it through one code path
(:meth:`WarmState.observe`), so the engines cannot drift apart in how
they warm the models.

What the contract covers (carried across hand-offs):

* the memory hierarchy (L1 I/D, unified L2, I/D TLBs) — warmed with one
  I-side access per 64-byte line crossing plus every D-side access;
* the branch predictor (gshare counters, BTB, RAS);
* the global history register;
* the I-fetch line cursor (``last_fetch_line``).

What it does **not** cover (owned by the detailed core per window):
in-flight speculation, issue-queue/LSQ/ROB occupancy, rename state, and
the free-running cycle counter.  Those are rebuilt by each window's
warm-up prefix; see docs/architecture.md "Two-speed simulation".
"""

from repro.branch.history import GlobalHistoryRegister
from repro.branch.predictors import BranchPredictor
from repro.events import Event
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode
from repro.mem.hierarchy import MemoryHierarchy

# Raw flag values: observe() runs once per functionally retired
# instruction, so its event composition stays on plain ints (see
# repro.mem.hierarchy); samplers wrap the mask back into Event.
_RETIRED = int(Event.RETIRED)
_BRANCH_TAKEN = int(Event.BRANCH_TAKEN)
_MISPREDICT = int(Event.MISPREDICT)


class WarmState:
    """The microarchitectural state shared across execution engines."""

    __slots__ = ("hierarchy", "predictor", "ghr", "last_fetch_line")

    GHR_BITS = 30  # wide enough for any path_bits mask the unit applies

    def __init__(self, hierarchy=None, predictor=None, ghr=None):
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.predictor = predictor or BranchPredictor()
        self.ghr = ghr or GlobalHistoryRegister(bits=self.GHR_BITS)
        self.last_fetch_line = None

    def note_redirect(self):
        """Invalidate the I-fetch line cursor after a fetch redirect.

        The detailed core fetches through its own front end, so after a
        window the cursor no longer matches the last line it touched;
        the scheduler calls this at every hand-off boundary.
        """
        self.last_fetch_line = None

    def observe(self, pc, inst, taken, next_pc, eff_addr):
        """Warm all models with one retired instruction.

        Returns ``(events, history)``: the event flags (an int bit mask
        of :class:`Event` values) a retired-instruction sampler would
        record and the global history *before* this instruction updated
        it.  This is the single source of truth for functional-mode
        warming — the profiler and the two-speed fast-forward both go
        through here.
        """
        hierarchy = self.hierarchy
        events = _RETIRED

        # Instruction fetch: one I-side access per 64B line crossing.
        line = pc >> 6
        if line != self.last_fetch_line:
            _, fetch_events = hierarchy.ifetch(pc)
            events |= fetch_events
            self.last_fetch_line = line

        history = self.ghr.value

        if inst.is_load or inst.is_prefetch:
            _, mem_events = hierarchy.dread(eff_addr)
            events |= mem_events
        elif inst.is_store:
            _, mem_events = hierarchy.dwrite(eff_addr)
            events |= mem_events
        elif inst.is_conditional:
            predictor = self.predictor
            predicted = predictor.predict_conditional(pc, history)
            correct = predicted == taken
            predictor.train_conditional(pc, history, taken, correct)
            self.ghr.push(taken)
            if taken:
                events |= _BRANCH_TAKEN
            if not correct:
                events |= _MISPREDICT
            self.last_fetch_line = None
        elif inst.is_control_flow:
            predictor = self.predictor
            events |= _BRANCH_TAKEN
            op = inst.op
            if op is Opcode.JMP or op is Opcode.RET:
                predicted = (predictor.predict_indirect(pc)
                             if op is Opcode.JMP
                             else predictor.ras.pop())
                if predicted != next_pc:
                    events |= _MISPREDICT
                if op is Opcode.JMP:
                    predictor.train_indirect(pc, next_pc)
            elif op is Opcode.JSR:
                predictor.ras.push(pc + INSTRUCTION_BYTES)
            self.last_fetch_line = None

        return events, history

    def signature(self):
        """Comparable digest of every piece of contract state.

        Used by the warm-contract tests: two engines that claim to warm
        the same state must produce equal signatures for the same
        retired stream.
        """
        predictor = self.predictor
        direction = getattr(predictor.direction, "_counters", None)
        return {
            "mem": self.hierarchy.stats(),
            "ghr": self.ghr.value,
            "direction": tuple(direction) if direction is not None else None,
            "btb": (tuple(predictor.btb._tags),
                    tuple(predictor.btb._targets)),
            "ras": tuple(predictor.ras._stack),
            "last_fetch_line": self.last_fetch_line,
        }


def fast_forward(interp, warm, count, cache=None):
    """Architecturally execute up to *count* instructions, warming *warm*.

    The two-speed hot loop: no TraceEntry allocation, no sampling, no
    truth accounting — just architectural stepping plus the warm-state
    contract.  Returns the number of instructions retired, which is less
    than *count* only if the program halted.

    With a *cache* (a :class:`repro.cpu.tracecache.BlockCache` for the
    same program), whole decoded blocks execute as one fused call
    whenever a block fits in the remaining budget; the per-instruction
    path below covers the remainder (unfusable instructions, or a block
    longer than what is left of *count*).  Both paths make identical
    architectural and warm-state updates — ``tests/cpu/test_tracecache``
    pins the equivalence.
    """
    state = interp.state
    program = interp.program
    fetch = program.fetch
    observe = warm.observe
    done = 0
    if cache is not None:
        lookup = cache.lookup
        ctr = [0]  # fast-forward discards event/mispredict accounting
        while done < count and not state.halted:
            block = lookup(state.pc)
            if block.fused is not None and block.length <= count - done:
                done += block.fused(state, warm, count - done, ctr)
                continue
            pc = state.pc
            inst = fetch(pc)
            taken, next_pc, eff_addr = inst.exec_fn(state, inst, pc,
                                                    program)
            observe(pc, inst, taken, next_pc, eff_addr)
            state.pc = next_pc
            done += 1
        interp.retired += done
        return done
    while done < count and not state.halted:
        pc = state.pc
        inst = fetch(pc)
        taken, next_pc, eff_addr = inst.exec_fn(state, inst, pc, program)
        observe(pc, inst, taken, next_pc, eff_addr)
        state.pc = next_pc
        done += 1
    interp.retired += done
    return done
