"""Decoded-basic-block trace cache for the functional engines.

The functional fast-forward (`repro.cpu.warm.fast_forward`) dominates
two-speed wall clock: per instruction it pays a `Program.fetch`, an
indirect `exec_fn` call, a full :meth:`WarmState.observe`, and a PC
write-back.  Almost all of that work is *statically determined* by the
instruction bytes — only the register values change between visits to
the same PC.  This module exploits that: straight-line runs of
instructions are decoded **once** into a block, compiled to one fused
Python function, and re-dispatched on every revisit with a single dict
lookup plus one version compare.

A fused block function:

* reads/writes the register list and memory dict directly (the zero
  register is safe to read: ``RegisterFile`` maintains ``_values[31] ==
  0`` as an invariant);
* performs exactly the warm-state updates :meth:`WarmState.observe`
  would make for the same retired stream — I-fetch per 64-byte line
  crossing (crossings inside a block are compile-time constants; only
  the entry fetch needs a runtime check), D-side accesses in program
  order, and predictor/GHR updates at the terminator;
* counts conditional/indirect mispredicts into ``ctr[0]`` so the
  functional profiler's ``mispredicts`` total is unchanged;
* raises the same :class:`SimulationError` (same message, same
  architectural state) as the per-instruction path for a wild indirect
  jump, *before* any warm-state update for the faulting instruction.

Blocks never contain a sampling point: callers only invoke a block when
its whole length fits under the sampling countdown, and spill to the
per-instruction path otherwise (see ``FunctionalProfiler``).

Invalidation contract: the cache revalidates ``program.version`` on
every lookup and drops every block when it changed.  All in-place
``Program`` mutators bump ``version`` (see ``repro.isa.program``), so a
live-patched program can never execute a stale decoded block.

Semantic equivalence with the interpreter is pinned by
``tests/cpu/test_tracecache.py`` (including a hypothesis property over
generated programs) and the invalidation contract by
``tests/cpu/test_tracecache_invalidation.py``.
"""

from repro.errors import SimulationError
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import CONDITIONAL_BRANCHES, Opcode
from repro.isa.registers import ZERO_REG
from repro.utils.bitops import to_signed, to_unsigned

# Longest fused block, in instructions.  Bounds compile time per block
# and the countdown slack the profiler needs before taking the fused
# path; straight-line runs longer than this split into chained blocks.
MAX_BLOCK = 64

_LINE_SHIFT = 6  # 64-byte I-fetch lines (matches WarmState.observe)
_M = "0xFFFFFFFFFFFFFFFF"  # 64-bit word mask, as a source literal
_EA = "0xFFFFFFFFFFFFFFF8"  # to_unsigned(x) & ~7: effective addresses
_PCMASK = "0xFFFFFFFFFFFFFFFC"  # to_unsigned(x) & ~3: indirect targets


class DecodedBlock:
    """One decoded run of instructions starting at ``entry``.

    ``fused`` is the compiled block function
    ``fused(state, warm, budget, ctr) -> retired_count`` or None when
    the first instruction cannot be fused (callers fall back to the
    per-instruction path for one step).  ``length`` is the instruction
    count of one pass through the block; callers must ensure ``length <=
    budget`` before calling ``fused``.  Self-looping blocks re-enter
    themselves while another full pass fits in ``budget``, so one call
    can retire many multiples of ``length``.
    """

    __slots__ = ("entry", "length", "fused", "source")

    def __init__(self, entry, length, fused, source=None):
        self.entry = entry
        self.length = length
        self.fused = fused
        self.source = source


class BlockCache:
    """Per-program decoded-block cache keyed by entry PC.

    Lookup cost on the hot path is one attribute compare (the version
    revalidation) plus one dict get.  The cache holds no reference to
    architectural state, so one cache serves any number of interpreter
    instances running the same Program object.
    """

    __slots__ = ("program", "_version", "_blocks")

    def __init__(self, program):
        self.program = program
        self._version = program.version
        self._blocks = {}

    def __len__(self):
        return len(self._blocks)

    def lookup(self, pc):
        """Return the :class:`DecodedBlock` starting at *pc*."""
        program = self.program
        if program.version != self._version:
            # The program was mutated through a registered mutator:
            # every decoded block may now be stale.  Drop them all.
            self._blocks.clear()
            self._version = program.version
        block = self._blocks.get(pc)
        if block is None:
            block = compile_block(program, pc)
            self._blocks[pc] = block
        return block


# ----------------------------------------------------------------------
# Decode: walk forward from an entry PC collecting fusable instructions.

_ALU_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.CMPLT, Opcode.CMPEQ, Opcode.CMPLE,
    Opcode.LDA, Opcode.LDI, Opcode.MUL,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
})


def _classify(program, pc, inst):
    """How *inst* participates in a block.

    Returns ``"line"`` (straight-line member), a terminator kind
    (``"halt"``, ``"cond"``, ``"br"``, ``"jsr"``, ``"jmp"``, ``"ret"``),
    or ``"bad"`` for instructions whose per-instruction execution would
    raise (malformed operands, statically invalid branch targets): those
    stay on the interpreter path so the error surfaces identically.
    """
    op = inst.op
    if op in _ALU_OPS:
        return "line" if inst.dest is not None else "bad"
    if op is Opcode.LD:
        return "line" if (inst.src1 is not None
                          and inst.dest is not None) else "bad"
    if op is Opcode.ST:
        return "line" if (inst.src1 is not None
                          and inst.src2 is not None) else "bad"
    if op is Opcode.PREFETCH:
        return "line" if inst.src1 is not None else "bad"
    if op is Opcode.NOP:
        return "line"
    if op is Opcode.HALT:
        return "halt"
    if op in CONDITIONAL_BRANCHES:
        if inst.target is None or not program.contains_pc(inst.target):
            return "bad"
        if not program.contains_pc(pc + INSTRUCTION_BYTES):
            return "bad"  # fall-through off the end: let fetch() raise
        return "cond"
    if op is Opcode.BR:
        if inst.target is None or not program.contains_pc(inst.target):
            return "bad"
        return "br"
    if op is Opcode.JSR:
        if inst.target is None or not program.contains_pc(inst.target):
            return "bad"
        if inst.dest is None:
            return "bad"
        return "jsr"
    if op is Opcode.JMP:
        return "jmp"
    if op is Opcode.RET:
        return "ret"
    return "bad"


def _reg(index):
    """Source-register read expression (R31 and absent operands are 0)."""
    if index is None or index == ZERO_REG:
        return "0"
    return "vals[%d]" % index


def _alu_lines(inst):
    """Source lines computing one ALU-class instruction in place."""
    op = inst.op
    dest = inst.dest_reg
    if dest is None:
        return []  # destination is R31: architecturally a no-op
    a = _reg(inst.src1)
    b = _reg(inst.src2)
    d = "vals[%d]" % dest
    if op is Opcode.ADD or op is Opcode.FADD:
        return ["%s = (%s + %s) & %s" % (d, a, b, _M)]
    if op is Opcode.SUB or op is Opcode.FSUB:
        return ["%s = (%s - %s) & %s" % (d, a, b, _M)]
    if op is Opcode.AND:
        return ["%s = %s & %s" % (d, a, b)]
    if op is Opcode.OR:
        return ["%s = %s | %s" % (d, a, b)]
    if op is Opcode.XOR:
        return ["%s = %s ^ %s" % (d, a, b)]
    if op is Opcode.SLL:
        return ["%s = (%s << %d) & %s" % (d, a, inst.imm & 63, _M)]
    if op is Opcode.SRL:
        return ["%s = %s >> %d" % (d, a, inst.imm & 63)]
    if op is Opcode.CMPLT:
        return ["%s = 1 if S(%s) < S(%s) else 0" % (d, a, b)]
    if op is Opcode.CMPEQ:
        return ["%s = 1 if %s == %s else 0" % (d, a, b)]
    if op is Opcode.CMPLE:
        return ["%s = 1 if S(%s) <= S(%s) else 0" % (d, a, b)]
    if op is Opcode.LDA:
        return ["%s = (%s + (%d)) & %s" % (d, a, inst.imm, _M)]
    if op is Opcode.LDI:
        return ["%s = %d" % (d, to_unsigned(inst.imm))]
    if op is Opcode.MUL or op is Opcode.FMUL:
        return ["%s = (S(%s) * S(%s)) & %s" % (d, a, b, _M)]
    if op is Opcode.FDIV:
        return [
            "b = S(%s)" % b,
            "%s = 0 if b == 0 else (S(%s) // b) & %s" % (d, a, _M),
        ]
    raise AssertionError("unhandled ALU opcode %s" % op)


_COND_EXPR = {
    # Conditions on the *unsigned* register value (what vals[] holds).
    Opcode.BEQ: "%s == 0",
    Opcode.BNE: "%s != 0",
    Opcode.BLT: "%s > 0x7FFFFFFFFFFFFFFF",  # sign bit set
    Opcode.BGE: "%s <= 0x7FFFFFFFFFFFFFFF",  # sign bit clear
}


def compile_block(program, entry):
    """Decode and compile the block starting at byte address *entry*."""
    insts = []
    pcs = []
    terminator = None
    pc = entry
    while True:
        inst = program.fetch_or_none(pc)
        if inst is None:
            break  # ran off the program: truncate, let the caller fault
        kind = _classify(program, pc, inst)
        if kind == "bad":
            break  # truncate before it; interpreter path raises exactly
        insts.append(inst)
        pcs.append(pc)
        if kind != "line":
            terminator = kind
            break
        pc += INSTRUCTION_BYTES
        if len(insts) >= MAX_BLOCK:
            break
    if not insts:
        return DecodedBlock(entry, 1, None)
    source = _generate(program, entry, insts, pcs, terminator)
    namespace = {"S": to_signed, "SimulationError": SimulationError}
    code = compile(source, "<tracecache %s@%#x>" % (program.name, entry),
                   "exec")
    exec(code, namespace)
    return DecodedBlock(entry, len(insts), namespace["run"], source)


def _generate(program, entry, insts, pcs, terminator):
    """Emit the fused function source for one decoded block."""
    last = insts[-1]
    # A conditional whose taken target is the block entry is a self
    # loop: chain iterations inside the call while the budget allows,
    # saving the dispatch (and the Python call) per iteration.
    looping = terminator == "cond" and last.target == entry
    body = []  # lines inside the (possibly looping) block body

    def ifetch_lines(index):
        """I-fetch for instruction *index*, per the line-cursor rules."""
        line = pcs[index] >> _LINE_SHIFT
        if index == 0:
            # Only the entry crossing depends on caller state.
            return ["if warm.last_fetch_line != %d:" % line,
                    "    hier.ifetch(%d)" % pcs[index]]
        if line != (pcs[index - 1] >> _LINE_SHIFT):
            return ["hier.ifetch(%d)" % pcs[index]]
        return []

    for index, inst in enumerate(insts[:-1] if terminator else insts):
        body.extend(ifetch_lines(index))
        body.extend(_straight_line(inst, pcs[index]))

    if terminator is None:
        # Truncated block (MAX_BLOCK or end of image): plain fall-off.
        exit_pc = pcs[-1] + INSTRUCTION_BYTES
        body.append("state.pc = %d" % exit_pc)
        body.append("warm.last_fetch_line = %d"
                    % (pcs[-1] >> _LINE_SHIFT))
        body.append("return %d" % len(insts))
    else:
        body.extend(_terminator(program, entry, insts, pcs, terminator,
                                looping))

    lines = [
        "def run(state, warm, budget, ctr):",
        "    vals = state.regs._values",
        "    words = state.memory._words",
        "    hier = warm.hierarchy",
        "    pred = warm.predictor",
        "    ghr = warm.ghr",
    ]
    if looping:
        lines.append("    done = 0")
        lines.append("    while True:")
        lines.extend("        " + line for line in body)
    else:
        lines.extend("    " + line for line in body)
    return "\n".join(lines) + "\n"


def _straight_line(inst, pc):
    """Source lines for one non-terminator instruction."""
    op = inst.op
    if op is Opcode.NOP:
        return []
    if op is Opcode.LD:
        lines = ["ea = (%s + (%d)) & %s" % (_reg(inst.src1), inst.imm, _EA)]
        if inst.dest_reg is not None:
            lines.append("vals[%d] = words.get(ea, 0)" % inst.dest_reg)
        lines.append("hier.dread(ea)")
        return lines
    if op is Opcode.ST:
        return [
            "ea = (%s + (%d)) & %s" % (_reg(inst.src1), inst.imm, _EA),
            "words[ea] = %s" % _reg(inst.src2),
            "hier.dwrite(ea)",
        ]
    if op is Opcode.PREFETCH:
        return [
            "ea = (%s + (%d)) & %s" % (_reg(inst.src1), inst.imm, _EA),
            "hier.dread(ea)",
        ]
    return _alu_lines(inst)


def _terminator(program, entry, insts, pcs, kind, looping):
    """Source lines for the block's terminating instruction."""
    inst = insts[-1]
    pc = pcs[-1]
    index = len(insts) - 1
    count = len(insts)
    line = pc >> _LINE_SHIFT

    def ifetch():
        if index == 0:
            return ["if warm.last_fetch_line != %d:" % line,
                    "    hier.ifetch(%d)" % pc]
        if line != (pcs[index - 1] >> _LINE_SHIFT):
            return ["hier.ifetch(%d)" % pc]
        return []

    out = []
    if kind == "halt":
        out.extend(ifetch())
        out.append("state.halted = True")
        out.append("state.pc = %d" % (pc + INSTRUCTION_BYTES))
        out.append("warm.last_fetch_line = %d" % line)
        out.append("return %d" % count)
        return out

    if kind == "br":
        out.extend(ifetch())
        out.append("state.pc = %d" % inst.target)
        out.append("warm.last_fetch_line = None")
        out.append("return %d" % count)
        return out

    if kind == "jsr":
        out.extend(ifetch())
        ret_addr = pc + INSTRUCTION_BYTES
        if inst.dest_reg is not None:
            out.append("vals[%d] = %d" % (inst.dest_reg, ret_addr))
        out.append("pred.ras.push(%d)" % ret_addr)
        out.append("state.pc = %d" % inst.target)
        out.append("warm.last_fetch_line = None")
        out.append("return %d" % count)
        return out

    if kind in ("jmp", "ret"):
        # Execute (and possibly fault) *before* this instruction's
        # I-fetch: the per-instruction path raises out of exec_fn before
        # observe() ever runs, so no warm state may move on the fault.
        out.append("t = %s & %s" % (_reg(inst.src1), _PCMASK))
        out.append("if t >= %d:" % program.pc_limit)
        out.append("    state.pc = %d" % pc)
        out.append('    raise SimulationError('
                   '"control transfer from %s to invalid PC %%#x" %% t)'
                   % ("%#x" % pc))
        out.extend(ifetch())
        if kind == "jmp":
            out.append("p = pred.predict_indirect(%d)" % pc)
        else:
            out.append("p = pred.ras.pop()")
        out.append("if p != t:")
        out.append("    ctr[0] += 1")
        if kind == "jmp":
            out.append("pred.train_indirect(%d, t)" % pc)
        out.append("state.pc = t")
        out.append("warm.last_fetch_line = None")
        out.append("return %d" % count)
        return out

    assert kind == "cond"
    out.extend(ifetch())
    out.append("a = %s" % _reg(inst.src1))
    out.append("taken = %s" % (_COND_EXPR[inst.op] % "a"))
    out.append("h = ghr.value")
    out.append("p = pred.predict_conditional(%d, h)" % pc)
    out.append("pred.train_conditional(%d, h, taken, p == taken)" % pc)
    out.append("ghr.push(taken)")
    out.append("if p != taken:")
    out.append("    ctr[0] += 1")
    out.append("warm.last_fetch_line = None")
    if looping:
        out.append("done += %d" % count)
        out.append("if taken:")
        out.append("    if budget - done >= %d:" % count)
        out.append("        continue")
        out.append("    state.pc = %d" % inst.target)
        out.append("else:")
        out.append("    state.pc = %d" % (pc + INSTRUCTION_BYTES))
        out.append("return done")
    else:
        out.append("if taken:")
        out.append("    state.pc = %d" % inst.target)
        out.append("else:")
        out.append("    state.pc = %d" % (pc + INSTRUCTION_BYTES))
        out.append("return %d" % count)
    return out
