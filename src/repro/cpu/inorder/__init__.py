"""In-order core package."""

from repro.cpu.inorder.core import InOrderCore

__all__ = ["InOrderCore"]
