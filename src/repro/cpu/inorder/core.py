"""In-order core model (Alpha 21164-like).

A stall-based, 4-wide in-order pipeline: instructions issue in program
order, stall on register hazards (scoreboard), on I-cache misses, and on
load-use dependences; branch mispredictions cost a fixed redirect penalty.

The model is execution-driven (it wraps the reference interpreter for
semantics) and publishes the same Probe callbacks as the out-of-order
core through the shared engine layer (:class:`~repro.engine.core.
CoreBase` + :class:`~repro.engine.bus.ProbeBus`), so event counters and
ProfileMe attach to either machine unchanged.  That symmetry is the
point: Figure 2 contrasts event-counter attribution on an in-order vs.
an out-of-order pipeline *running the same loop*.

Fidelity notes (documented substitutions):

* wrong-path fetch is modelled as a pure bubble (no wrong-path
  instructions are created) — on the in-order machine those instructions
  never execute, so only the penalty matters;
* retirement is in order, a fixed two stages after completion.
"""

from repro.branch.history import GlobalHistoryRegister
from repro.branch.predictors import BranchPredictor
from repro.cpu.config import MachineConfig
from repro.cpu.dynops import DynInst
from repro.cpu.probes import inst_slot
from repro.engine.core import CoreBase
from repro.errors import SimulationError
from repro.events import Event
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_REGS
from repro.mem.hierarchy import MemoryHierarchy

_FRONTEND_DEPTH = 2  # fetch -> issue stages
_RETIRE_DEPTH = 2  # complete -> retire stages


class InOrderCore(CoreBase):
    """Greedy in-order timing model over the reference interpreter."""

    def __init__(self, program, config=None, hierarchy=None, predictor=None):
        super().__init__(config or MachineConfig.alpha21164_like())
        self.program = program
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.predictor = predictor or BranchPredictor(self.config.predictor)
        self.ghr = GlobalHistoryRegister(bits=30)

        self._interp = Interpreter(program)

        self._slots_used = 0
        self._reg_ready = [0] * NUM_REGS
        self._last_fetch_block = None

        self.halted = False
        self.fetched = 0
        self.retired = 0
        self.aborted = 0  # never aborts: no wrong-path instructions exist
        self.mispredicts = 0

    def architectural_registers(self):
        return self._interp.state.regs.snapshot()

    def _register_pipeline_probes(self, registry):
        """The in-order machine's (much smaller) structure gauges."""
        prefix = "cpu%d.inorder" % self.context
        registry.register(prefix + ".slots_used",
                          lambda: self._slots_used,
                          kind="gauge", unit="slots",
                          description="issue slots consumed this cycle")
        registry.register(prefix + ".busy_registers",
                          lambda: sum(1 for ready in self._reg_ready
                                      if ready > self.cycle),
                          kind="gauge", unit="registers",
                          description="scoreboard registers still pending")

    # ------------------------------------------------------------------
    # Engine hook: the in-order model's schedulable step is one
    # *instruction* — the cycle cursor may jump forward by its stalls.

    def advance(self):
        entry = self._interp.step()
        if entry is None:
            self.halted = True
            return

        inst = entry.inst
        dyninst = DynInst(seq=self.next_seq, pc=entry.pc, inst=inst,
                          fetch_cycle=0)
        self.next_seq += 1
        dyninst.history_at_fetch = self.ghr.value
        dyninst.eff_addr = entry.eff_addr
        self.fetched += 1

        earliest = max(self.cycle, self.fetch_stall_until)

        # Fetch-block crossing: one I-cache access per block.
        block = entry.pc >> 6  # 64-byte I-cache line
        if block != self._last_fetch_block:
            latency, events = self.hierarchy.ifetch(entry.pc)
            if events:
                dyninst.events |= events
            earliest += latency
            self._last_fetch_block = block

        # Register hazards (stall-on-use scoreboard).
        reg_ready = self._reg_ready
        for reg in inst.sources:
            ready = reg_ready[reg]
            if ready > earliest:
                earliest = ready

        # In-order issue bandwidth.
        if earliest > self.cycle:
            self.cycle = earliest
            self._slots_used = 0
        elif self._slots_used >= self.config.issue_width:
            self.cycle += 1
            self._slots_used = 0
        issue = self.cycle
        self._slots_used += 1

        # Execute.
        latency = inst.exec_latency
        if inst.is_load:
            lat, events = self.hierarchy.dread(entry.eff_addr)
            if events:
                dyninst.events |= events
            latency = lat
        elif inst.is_store:
            lat, events = self.hierarchy.dwrite(entry.eff_addr)
            if events:
                dyninst.events |= events
            latency = 1
        elif inst.is_prefetch:
            _, events = self.hierarchy.dread(entry.eff_addr)
            if events:
                dyninst.events |= events
            latency = 1  # fire and forget
        complete = issue + latency

        dest = inst.dest_reg
        if dest is not None:
            reg_ready[dest] = complete

        # Control flow: prediction and redirect cost.
        if inst.is_conditional:
            taken = entry.taken
            history = self.ghr.value
            predicted = self.predictor.predict_conditional(entry.pc, history)
            correct = predicted == taken
            self.predictor.train_conditional(entry.pc, history,
                                             taken, correct)
            self.ghr.push(taken)
            dyninst.predicted_taken = predicted
            dyninst.actual_taken = taken
            dyninst.actual_target = entry.next_pc
            if taken:
                dyninst.events |= Event.BRANCH_TAKEN
            if not correct:
                dyninst.events |= Event.MISPREDICT
                self.mispredicts += 1
                self.fetch_stall_until = (complete
                                          + self.config.mispredict_penalty)
            self._last_fetch_block = None  # redirect refetches the block
        elif inst.is_control_flow:
            dyninst.actual_taken = True
            dyninst.actual_target = entry.next_pc
            dyninst.events |= Event.BRANCH_TAKEN
            if inst.op in (Opcode.JMP, Opcode.RET):
                predicted = (self.predictor.predict_indirect(entry.pc)
                             if inst.op is Opcode.JMP
                             else self.predictor.ras.pop())
                if predicted != entry.next_pc:
                    dyninst.events |= Event.MISPREDICT
                    self.mispredicts += 1
                    self.fetch_stall_until = (
                        complete + self.config.mispredict_penalty)
                if inst.op is Opcode.JMP:
                    self.predictor.train_indirect(entry.pc, entry.next_pc)
            elif inst.op is Opcode.JSR:
                self.predictor.ras.push(entry.pc + INSTRUCTION_BYTES)
            self._last_fetch_block = None

        # Timestamps: fixed frontend depth, in-order retirement.
        dyninst.fetch_cycle = max(0, issue - _FRONTEND_DEPTH)
        dyninst.map_cycle = max(0, issue - 1)
        dyninst.data_ready_cycle = issue
        dyninst.issue_cycle = issue
        dyninst.exec_complete_cycle = complete
        if inst.is_load:
            dyninst.load_complete_cycle = complete
        retire = max(self._last_retire_cycle, complete + _RETIRE_DEPTH)
        dyninst.retire_cycle = retire
        dyninst.events |= Event.RETIRED
        self._last_retire_cycle = retire
        self.retired += 1

        bus = self.bus
        if bus.fetch_slots:
            slots = [inst_slot(dyninst)]
            for callback in bus.fetch_slots:
                callback(dyninst.fetch_cycle, slots)
        for callback in bus.issue:
            callback(dyninst, issue)
        for callback in bus.retire:
            callback(dyninst, retire)
        for callback in bus.cycle_end:
            callback(self.cycle)

        if inst.op is Opcode.HALT:
            self.halted = True
        if self.retired > 200_000_000:
            raise SimulationError("runaway in-order simulation")
