"""Bucketed event wheel for completion scheduling.

The out-of-order core used to keep pending completions in a ``{cycle:
[(dyninst, kind), ...]}`` dict, popping the current cycle's list every
cycle and ``sorted()``-walking the whole dict at drain time.  The wheel
replaces that with a ring of buckets indexed by ``cycle % size``: the
common case (every modelled latency is far below the ring size) is one
list append to schedule and one slot check to pop, with no hashing.

Events further in the future than the ring can hold go to an overflow
dict that is only consulted while non-empty, so exotic machine configs
stay correct without taxing the common path.

The wheel relies on its consumer calling :meth:`pop_due` for *every*
cycle in order (the core does: completions are processed each cycle),
which guarantees a slot never holds two distinct due cycles at once.
"""


class EventWheel:
    """Ring of per-cycle buckets plus a far-future overflow dict."""

    __slots__ = ("size", "_buckets", "_due", "_overflow")

    def __init__(self, size=256):
        self.size = size
        self._buckets = [[] for _ in range(size)]
        self._due = [None] * size  # due cycle held by each slot
        self._overflow = {}  # cycle -> [item, ...]

    def __bool__(self):
        if self._overflow:
            return True
        return any(due is not None for due in self._due)

    def schedule(self, due, now, item):
        """File *item* for cycle *due* (>= *now*, the current cycle)."""
        if due - now < self.size:
            slot = due % self.size
            bucket = self._buckets[slot]
            if not bucket:
                self._due[slot] = due
            bucket.append(item)
        else:
            self._overflow.setdefault(due, []).append(item)

    def pop_due(self, now):
        """All items due exactly at *now*; empty tuple if none."""
        slot = now % self.size
        if self._due[slot] == now:
            items = self._buckets[slot]
            self._buckets[slot] = []
            self._due[slot] = None
        else:
            items = ()
        if self._overflow:
            late = self._overflow.pop(now, None)
            if late:
                items = list(items) + late
        return items

    def drain_ordered(self):
        """Yield every pending item in due-cycle order (for shutdown)."""
        pending = []
        for slot, due in enumerate(self._due):
            if due is not None:
                pending.append((due, self._buckets[slot]))
        pending.extend(self._overflow.items())
        pending.sort(key=lambda entry: entry[0])
        for due, items in pending:
            for item in items:
                yield due, item

    def clear(self):
        for slot in range(self.size):
            if self._due[slot] is not None:
                self._due[slot] = None
                self._buckets[slot] = []
        self._overflow.clear()
