"""Cycle-level out-of-order core (Alpha 21264-like).

The pipeline mirrors Figure 1 of the paper:

    fetch -> (slot/rename delay) -> map -> issue queue -> execute -> retire

Key modelled behaviours, each load-bearing for an experiment:

* in-order fetch along the *predicted* control path, with fetch blocks and
  fetch opportunities (section 4.1.1's two instruction-selection modes);
* register renaming with a bounded physical register file and issue queue
  (map stalls -> Table 1's Fetch->Map latency);
* data-flow issue with per-class functional units (Data-ready->Issue);
* speculative wrong-path fetch *and execution*, squashed on mispredict
  resolution (fetched-but-aborted ProfileMe samples);
* in-order retirement from a reorder buffer (Retire-ready->Retire), loads
  allowed to retire before their data returns (Load-issue->Completion);
* precise per-instruction timestamps and events on every DynInst — the
  signals the ProfileMe hardware latches.

The core knows nothing about profiling: observers see it via
:class:`repro.cpu.probes.Probe` callbacks dispatched through the
engine-layer :class:`~repro.engine.bus.ProbeBus` (run loop, limits, and
probe plumbing live in :class:`~repro.engine.core.CoreBase`).
"""

from bisect import bisect_left, insort
from collections import deque

from repro.branch.history import GlobalHistoryRegister
from repro.branch.predictors import BranchPredictor
from repro.cpu.config import MachineConfig
from repro.cpu.dynops import DynInst
from repro.cpu.ooo.lsq import BLOCK, CLEAR, FORWARD, LoadStoreQueue
from repro.cpu.ooo.rename import RegisterRenamer
from repro.cpu.ooo.wheel import EventWheel
from repro.cpu.probes import empty_slot, inst_slot, offpath_slot
from repro.engine.core import CoreBase
from repro.errors import SimulationError
from repro.events import AbortReason, Event
from repro.isa import semantics
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode
from repro.isa.state import Memory
from repro.mem.hierarchy import MemoryHierarchy

_COMPLETE_EXEC = "exec"
_COMPLETE_LOAD = "load"

_STORE_FORWARD_LATENCY = 2

# The scheduler composes event flags millions of times per run, and
# IntFlag's operator overloads go through an enum lookup per `|`/`&`.
# DynInst.events is a plain int bit-field on the hot paths; these are
# the raw flag values.  The (rare) profile-capture points wrap the
# field back into an Event, so observers still see the enum type.
_RETIRED = int(Event.RETIRED)
_MISPREDICT = int(Event.MISPREDICT)
_BRANCH_TAKEN = int(Event.BRANCH_TAKEN)
_FU_CONFLICT = int(Event.FU_CONFLICT)
_LSQ_REPLAY = int(Event.LSQ_REPLAY)
_STORE_FORWARD = int(Event.STORE_FORWARD)
_MAP_STALL_ROB = int(Event.MAP_STALL_ROB)
_MAP_STALL_IQ = int(Event.MAP_STALL_IQ)
_MAP_STALL_REGS = int(Event.MAP_STALL_REGS)
_ABORT_EVENTS = int(Event.ABORTED | Event.BAD_PATH)


class OutOfOrderCore(CoreBase):
    """Execution-driven out-of-order processor model."""

    def __init__(self, program, config=None, hierarchy=None, predictor=None,
                 context=0, ghr=None):
        super().__init__(config or MachineConfig.alpha21264_like(),
                         context=context)
        self.program = program
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.predictor = predictor or BranchPredictor(self.config.predictor)
        self.ghr = ghr or GlobalHistoryRegister(bits=30)

        self.memory = Memory(program.initial_memory)
        self.renamer = RegisterRenamer(self.config.phys_regs)

        self.halted = False

        self.fetch_pc = program.entry
        # PC of the next instruction after the youngest retired one: the
        # architectural resume point a two-speed hand-off continues from.
        self.committed_pc = program.entry
        self.pending_fetch_events = 0

        self.fetch_queue = deque()
        self.rob = deque()
        # Issue queue: an array-of-structs data plane.  Each resident
        # entry owns a *slot* in the preallocated parallel arrays below
        # (fu pool, load bit, data-ready stamp, unready-source count),
        # so the issue scan indexes flat lists instead of chasing
        # DynInst attributes.  Scheduling order lives in packed int
        # keys, `(seq << _slot_bits) | slot`: sorting keys sorts by age
        # (seqs are unique), and the slot rides along in the low bits.
        # `_iq_ready` holds the keys whose operands are all available,
        # ascending; `_iq_waiting` maps a physical register to the
        # ascending keys still waiting on it, so a completion promotes
        # exactly its waiters (no every-entry-every-cycle scan) and a
        # squash is one bisect per touched list.
        capacity = self.config.iq_entries
        self._iq_capacity = capacity
        self._slot_bits = capacity.bit_length()
        self._slot_mask = (1 << self._slot_bits) - 1
        self._slot_free = list(range(capacity))
        self._slot_dyn = [None] * capacity
        self._slot_pool = [None] * capacity
        self._slot_isload = [False] * capacity
        self._slot_dr = [-1] * capacity  # data_ready stamp; -1 = unscanned
        self._slot_waits = [0] * capacity
        self._iq_ready = []
        self._iq_waiting = {}
        self.lsq = LoadStoreQueue(self.config.lsq_entries)
        self._wheel = EventWheel()  # pending (dyninst, kind) completions

        # Statistics.
        self.fetched = 0
        self.retired = 0
        self.aborted = 0
        self.mispredicts = 0

    def _register_pipeline_probes(self, registry):
        """Occupancy gauges for the out-of-order structures."""
        prefix = "cpu%d.ooo" % self.context
        registry.register(prefix + ".iq.occupancy",
                          lambda: self._iq_count,
                          kind="gauge", unit="entries",
                          description="issue-queue entries in flight")
        registry.register(prefix + ".rob.occupancy",
                          lambda: len(self.rob),
                          kind="gauge", unit="entries",
                          description="reorder-buffer entries in flight")
        registry.register(prefix + ".lsq.depth",
                          lambda: len(self.lsq),
                          kind="gauge", unit="entries",
                          description="load/store-queue entries in flight")
        registry.register(prefix + ".fetch_queue.depth",
                          lambda: len(self.fetch_queue),
                          kind="gauge", unit="entries",
                          description="fetched instructions awaiting map")

    def inject_state(self, regs, memory, pc):
        """Start execution from externally supplied architectural state.

        The two-speed hand-off: *regs* is a 32-entry snapshot list,
        *memory* is a live :class:`~repro.isa.state.Memory` the core
        adopts (NOT copied — stores only touch it at retire, so sharing
        it with the functional interpreter is safe), and *pc* is the
        first instruction to fetch.  Must be called before the first
        cycle is simulated.
        """
        if self.cycle or self.retired or self.fetched:
            raise SimulationError("inject_state into a running core")
        self.renamer.seed_architectural(regs)
        self.memory = memory
        self.fetch_pc = pc
        self.committed_pc = pc

    # ------------------------------------------------------------------
    # Engine hooks (run loop, limits, and probes live in CoreBase).

    def _deadlock_message(self, deadlock_limit):
        return ("no instruction retired for %d cycles at cycle %d "
                "(pc=%s rob=%d iq=%d)"
                % (deadlock_limit, self.cycle, self.fetch_pc,
                   len(self.rob), self._iq_count))

    @property
    def _iq_count(self):
        """Issue-queue occupancy: every resident entry holds one slot."""
        return self._iq_capacity - len(self._slot_free)

    @property
    def iq(self):
        """The issue-queue contents in age order (tests/introspection).

        The hot-path representation is the slot arrays + key lists
        above; this view reassembles the resident DynInsts (an entry
        waiting on two registers appears in two waiting lists but holds
        one slot, so iterating the slots deduplicates for free).
        """
        entries = [dyninst for dyninst in self._slot_dyn
                   if dyninst is not None]
        entries.sort(key=lambda dyninst: dyninst.seq)
        return entries

    def step_cycle(self):
        """Simulate one clock cycle."""
        cycle = self.cycle
        self._process_completions(cycle)
        if not self.halted:
            self._retire(cycle)
        if not self.halted:
            self._issue(cycle)
            self._map(cycle)
            self._fetch(cycle)
        for callback in self.bus.cycle_end:
            callback(cycle)
        self.cycle = cycle + 1

    advance = step_cycle

    # ------------------------------------------------------------------
    # Fetch.

    def _fetch(self, cycle):
        width = self.config.fetch_width
        # Fast path: fetch-slot objects exist only for observers.  With
        # no on_fetch_slots subscriber the fetcher skips building them
        # (and the publish) entirely — this fires every cycle, so it is
        # the single hottest dispatch point in the model.
        publish = self.bus.fetch_slots
        slots = [] if publish else None
        can_fetch = (cycle >= self.fetch_stall_until
                     and self.fetch_pc is not None
                     and len(self.fetch_queue) + width
                     <= self.config.fetch_queue_entries)
        if can_fetch:
            latency, events = self.hierarchy.ifetch(self.fetch_pc)
            if events:
                self.pending_fetch_events |= events
            if latency > 0:
                self.fetch_stall_until = cycle + latency
                can_fetch = False

        if not can_fetch:
            if publish:
                self._publish_slots(cycle, [empty_slot()] * width)
            return

        block_bytes = width * INSTRUCTION_BYTES
        block_start = self.fetch_pc & ~(block_bytes - 1)
        block_end = block_start + block_bytes

        # Opportunities before the entry point into the block hold
        # instructions that are in the fetch block but off the predicted
        # path (section 4.1.1).
        pc = block_start
        if publish:
            while pc < self.fetch_pc:
                slots.append(offpath_slot(pc)
                             if self.program.contains_pc(pc)
                             else empty_slot())
                pc += INSTRUCTION_BYTES
        else:
            pc = self.fetch_pc

        taken = False
        fetch_or_none = self.program.fetch_or_none
        enqueue = self.fetch_queue.append
        predict = self._predict
        while pc < block_end and not taken:
            inst = fetch_or_none(pc)
            if inst is None:
                # Speculation ran off the end of the image; real hardware
                # would fetch garbage and fault.  Fetch idles until a
                # squash redirects it.
                self.fetch_pc = None
                break
            dyninst = self._make_dyninst(pc, inst, cycle)
            if publish:
                slots.append(inst_slot(dyninst))
            enqueue(dyninst)
            self.fetched += 1
            next_pc = predict(dyninst)
            pc += INSTRUCTION_BYTES
            taken = next_pc != pc
            self.fetch_pc = next_pc

        if not publish:
            return
        if taken:
            # Slots after a predicted-taken branch hold off-path
            # instructions from the same block.
            while pc < block_end:
                slots.append(offpath_slot(pc)
                             if self.program.contains_pc(pc)
                             else empty_slot())
                pc += INSTRUCTION_BYTES
        while len(slots) < width:
            slots.append(empty_slot())
        self._publish_slots(cycle, slots)

    def _make_dyninst(self, pc, inst, cycle):
        dyninst = DynInst(seq=self.next_seq, pc=pc, inst=inst,
                          fetch_cycle=cycle, context=self.context)
        self.next_seq += 1
        dyninst.history_at_fetch = self.ghr.value
        if self.pending_fetch_events:
            dyninst.events |= self.pending_fetch_events
            self.pending_fetch_events = 0
        return dyninst

    def _predict(self, dyninst):
        """Predict control flow at fetch; return the next fetch PC."""
        inst = dyninst.inst
        pc = dyninst.pc
        fall_through = pc + INSTRUCTION_BYTES
        op = inst.op

        dyninst.ghr_before = self.ghr.snapshot()
        if inst.is_conditional:
            predicted = self.predictor.predict_conditional(pc, self.ghr.value)
            self.ghr.push(predicted)
            dyninst.predicted_taken = predicted
            dyninst.predicted_target = inst.target
            dyninst.ghr_after = self.ghr.snapshot()
            return inst.target if predicted else fall_through
        dyninst.ghr_after = dyninst.ghr_before

        if op is Opcode.BR:
            dyninst.predicted_taken = True
            dyninst.predicted_target = inst.target
            return inst.target
        if op is Opcode.JSR:
            dyninst.predicted_taken = True
            dyninst.predicted_target = inst.target
            self.predictor.ras.push(fall_through)
            return inst.target
        if op is Opcode.RET:
            target = self.predictor.ras.pop()
            if target is None:
                target = fall_through
            dyninst.predicted_taken = True
            dyninst.predicted_target = target
            return target
        if op is Opcode.JMP:
            target = self.predictor.predict_indirect(pc)
            if target is None:
                target = fall_through
            dyninst.predicted_taken = True
            dyninst.predicted_target = target
            return target
        return fall_through

    def _publish_slots(self, cycle, slots):
        for callback in self.bus.fetch_slots:
            callback(cycle, slots)

    # ------------------------------------------------------------------
    # Map (decode/rename/dispatch).

    def _map(self, cycle):
        mapped = 0
        config = self.config
        map_width = config.map_width
        frontend_delay = config.frontend_delay
        rob_entries = config.rob_entries
        fetch_queue = self.fetch_queue
        rob = self.rob
        renamer = self.renamer
        lsq = self.lsq
        while fetch_queue and mapped < map_width:
            dyninst = fetch_queue[0]
            inst = dyninst.inst
            if dyninst.fetch_cycle + frontend_delay > cycle:
                break
            if len(rob) >= rob_entries:
                dyninst.events |= _MAP_STALL_ROB
                break
            needs_iq = not inst.bypasses_iq
            if needs_iq and not self._slot_free:
                dyninst.events |= _MAP_STALL_IQ
                break
            if inst.is_memory and lsq.full:
                dyninst.events |= _MAP_STALL_IQ
                break
            if (inst.dest_reg is not None
                    and not renamer.free_list):
                dyninst.events |= _MAP_STALL_REGS
                break

            fetch_queue.popleft()
            if not renamer.rename(dyninst):
                raise SimulationError("rename failed after resource check")
            dyninst.map_cycle = cycle
            rob.append(dyninst)
            if inst.is_memory:
                lsq.insert(dyninst)
            if needs_iq:
                self._insert_iq(dyninst)
            else:
                # NOP/HALT: no operands, no functional unit; ready next cycle.
                dyninst.data_ready_cycle = cycle
                dyninst.issue_cycle = cycle
                self._wheel.schedule(cycle + 1, cycle, (dyninst,
                                                        _COMPLETE_EXEC))
            mapped += 1

    def _insert_iq(self, dyninst):
        """File *dyninst* as ready or waiting on its unready sources.

        Allocates a queue slot, fills its struct-of-arrays columns, and
        enqueues the packed key.  A source physical register is unready
        exactly while its producer is in flight; the producer's
        completion (`_wake`) moves waiters to the ready list.  Ready
        bits can only rise while the consumer sits in the queue (a
        source cannot be reallocated before all its readers retire), so
        counting unready sources once at map time is sound.  Duplicate
        unready sources enqueue the key twice on the same list and are
        decremented twice by the same wake.
        """
        inst = dyninst.inst
        slot = self._slot_free.pop()
        self._slot_dyn[slot] = dyninst
        self._slot_pool[slot] = inst.fu_pool
        self._slot_isload[slot] = inst.is_load
        self._slot_dr[slot] = -1
        dyninst.iq_slot = slot
        key = (dyninst.seq << self._slot_bits) | slot
        ready_bits = self.renamer.ready
        waits = 0
        for phys in dyninst.src_phys:
            if not ready_bits[phys]:
                waits += 1
                waiters = self._iq_waiting.get(phys)
                if waiters is None:
                    self._iq_waiting[phys] = [key]
                else:
                    # Mapped in program order: always the youngest key.
                    waiters.append(key)
        self._slot_waits[slot] = waits
        if waits == 0:
            self._iq_ready.append(key)

    def _wake(self, phys):
        """A value landed in *phys*: promote waiters that became ready."""
        waiters = self._iq_waiting.pop(phys, None)
        if not waiters:
            return
        ready = self._iq_ready
        slot_waits = self._slot_waits
        mask = self._slot_mask
        for key in waiters:
            slot = key & mask
            waits = slot_waits[slot] - 1
            slot_waits[slot] = waits
            if waits:
                continue
            # Woken keys may be older than keys already in the ready
            # list; keep it sorted to preserve age-ordered issue.
            if not ready or ready[-1] < key:
                ready.append(key)
            else:
                insort(ready, key)

    # ------------------------------------------------------------------
    # Issue / execute.

    def _issue(self, cycle, units=None, budget=None):
        """Select and start ready instructions.

        *units* and *budget* may be supplied by an SMT wrapper so several
        hardware contexts share one cycle's functional units and issue
        bandwidth; the remaining budget is returned.
        """
        if units is None:
            units = {
                "ialu": self.config.units.ialu,
                "imul": self.config.units.imul,
                "fp": self.config.units.fp,
                "mem": self.config.units.mem_ports,
            }
        if budget is None:
            budget = self.config.issue_width
        ready = self._iq_ready
        if not ready:
            return budget
        issue_subs = self.bus.issue
        slot_dyn = self._slot_dyn
        slot_pool = self._slot_pool
        slot_dr = self._slot_dr
        slot_isload = self._slot_isload
        slot_free = self._slot_free
        mask = self._slot_mask
        kept = []
        index = 0
        total = len(ready)
        while index < total:
            if budget == 0:
                # Unreached keys keep their position *and* stay
                # unstamped: the data-ready stamp records when the
                # issue scan first considered them, matching the old
                # full-scan's early break.
                kept.extend(ready[index:])
                break
            key = ready[index]
            index += 1
            slot = key & mask
            dyninst = slot_dyn[slot]
            if slot_dr[slot] < 0:
                slot_dr[slot] = cycle
            pool = slot_pool[slot]
            if units[pool] == 0:
                dyninst.events |= _FU_CONFLICT
                kept.append(key)
                continue
            if slot_isload[slot]:
                if not self._try_issue_load(dyninst, cycle):
                    kept.append(key)
                    continue
            else:
                self._execute(dyninst, cycle)
            units[pool] -= 1
            budget -= 1
            dyninst.issue_cycle = cycle
            # Leaving the queue: write the slot's stamp back onto the
            # DynInst (the only state observers read later) and recycle
            # the slot.
            dyninst.data_ready_cycle = slot_dr[slot]
            dyninst.iq_slot = -1
            slot_dyn[slot] = None
            slot_free.append(slot)
            for callback in issue_subs:
                callback(dyninst, cycle)
        self._iq_ready = kept
        return budget

    def _operand_values(self, dyninst):
        inst = dyninst.inst
        src_phys = dyninst.src_phys
        values = self.renamer.values
        slot = inst.src1_slot
        a = values[src_phys[slot]] if slot is not None else 0
        slot = inst.src2_slot
        b = values[src_phys[slot]] if slot is not None else 0
        return a, b

    def _try_issue_load(self, dyninst, cycle):
        """Resolve memory dependences; start the access if possible."""
        a, _ = self._operand_values(dyninst)
        dyninst.eff_addr = semantics.effective_address(dyninst.inst, a)
        status, store = self.lsq.load_status(dyninst)
        if status == BLOCK:
            dyninst.events |= _LSQ_REPLAY
            dyninst.eff_addr = None  # recompute on the next attempt
            return False
        if status == FORWARD:
            dyninst.events |= _STORE_FORWARD
            dyninst.result = store.result
            latency = _STORE_FORWARD_LATENCY
        else:
            assert status == CLEAR
            latency, events = self.hierarchy.dread(dyninst.eff_addr)
            if events:
                dyninst.events |= events
            dyninst.result = self.memory.read(dyninst.eff_addr)
        # Alpha-style: a load is ready to retire once its access is under
        # way; the value arrives (and wakes dependents) later.
        wheel = self._wheel
        wheel.schedule(cycle + 1, cycle, (dyninst, _COMPLETE_EXEC))
        wheel.schedule(cycle + latency, cycle, (dyninst, _COMPLETE_LOAD))
        return True

    def _execute(self, dyninst, cycle):
        """Compute results/outcomes for non-load instructions at issue."""
        inst = dyninst.inst
        op = inst.op
        a, b = self._operand_values(dyninst)
        latency = 1

        if inst.is_store:
            dyninst.eff_addr = semantics.effective_address(inst, a)
            dyninst.result = b
            self.lsq.resolve_store(dyninst)
            lat, events = self.hierarchy.dwrite(dyninst.eff_addr)
            if events:
                dyninst.events |= events
            latency = 1  # tag check; the write buffer hides the rest
        elif inst.is_prefetch:
            # Fire-and-forget cache warm: starts the fill, completes
            # immediately, never blocks (it has no consumers).
            dyninst.eff_addr = semantics.effective_address(inst, a)
            lat, events = self.hierarchy.dread(dyninst.eff_addr)
            if events:
                dyninst.events |= events
            latency = 1
        elif inst.is_control_flow:
            taken, target = semantics.control_outcome(inst, dyninst.pc, a)
            dyninst.actual_taken = taken
            dyninst.actual_target = target
            if taken:
                dyninst.events |= _BRANCH_TAKEN
            if op is Opcode.JSR:
                dyninst.result = dyninst.pc + INSTRUCTION_BYTES
            latency = 1
        else:
            dyninst.result = semantics.alu_result(op, a, b, inst.imm)
            latency = inst.exec_latency
        self._wheel.schedule(cycle + latency, cycle,
                             (dyninst, _COMPLETE_EXEC))

    def _process_completions(self, cycle):
        items = self._wheel.pop_due(cycle)
        if not items:
            return
        renamer = self.renamer
        for dyninst, kind in items:
            if dyninst.squashed:
                continue
            if kind == _COMPLETE_LOAD:
                dyninst.load_complete_cycle = cycle
                if renamer.complete(dyninst, dyninst.result, cycle):
                    self._wake(dyninst.dest_phys)
                continue
            dyninst.exec_complete_cycle = cycle
            if not dyninst.inst.is_load and dyninst.dest_phys is not None:
                if renamer.complete(dyninst, dyninst.result, cycle):
                    self._wake(dyninst.dest_phys)
            if dyninst.inst.is_control_flow:
                self._resolve_control(dyninst, cycle)

    # ------------------------------------------------------------------
    # Control-flow resolution and squash.

    def _resolve_control(self, dyninst, cycle):
        inst = dyninst.inst
        mispredicted = False
        if inst.is_conditional:
            mispredicted = dyninst.actual_taken != dyninst.predicted_taken
        elif inst.op in (Opcode.JMP, Opcode.RET):
            mispredicted = dyninst.actual_target != dyninst.predicted_target
        if not mispredicted:
            return
        dyninst.events |= _MISPREDICT
        self.mispredicts += 1
        # Repair the global history: drop the speculative bits pushed by
        # this branch and everything younger, then push the truth.
        self.ghr.restore(dyninst.ghr_before)
        if inst.is_conditional:
            self.ghr.push(dyninst.actual_taken)
        self._squash_younger(dyninst.seq, cycle)
        self.fetch_pc = dyninst.actual_target
        if not dyninst.actual_taken:
            self.fetch_pc = dyninst.pc + INSTRUCTION_BYTES
        self.fetch_stall_until = max(self.fetch_stall_until,
                                     cycle + self.config.mispredict_penalty)
        self.pending_fetch_events = 0

    def _squash_younger(self, seq, cycle):
        """Remove every instruction younger than *seq* from the machine."""
        while self.fetch_queue:
            victim = self.fetch_queue.pop()
            if victim.seq <= seq:
                self.fetch_queue.append(victim)
                break
            self._abort(victim, cycle, AbortReason.MISPREDICT_SQUASH)
        while self.rob:
            victim = self.rob[-1]
            if victim.seq <= seq:
                break
            self.rob.pop()
            victim.squashed = True
            self.renamer.rollback(victim)
            self._abort(victim, cycle, AbortReason.MISPREDICT_SQUASH)
        self._squash_iq(seq)
        self.lsq.squash_younger(seq)

    def _squash_iq(self, seq):
        """Drop issue-queue keys younger than *seq* from every list.

        Keys sort by seq, so each list is cut with one bisect.  The
        victims' slots were already recycled by :meth:`_abort` (every
        issue-queue resident is in the ROB, and the squash walk aborts
        ROB victims before calling here); this only removes their keys.
        """
        if not self._iq_ready and not self._iq_waiting:
            return
        cut = (seq + 1) << self._slot_bits
        ready = self._iq_ready
        index = bisect_left(ready, cut)
        if index < len(ready):
            del ready[index:]
        waiting = self._iq_waiting
        if waiting:
            for phys in list(waiting):
                waiters = waiting[phys]
                index = bisect_left(waiters, cut)
                if index == 0:
                    del waiting[phys]
                elif index < len(waiters):
                    del waiters[index:]

    def _abort(self, dyninst, cycle, reason):
        slot = dyninst.iq_slot
        if slot >= 0:
            # Still in the issue queue: persist the scan stamp (abort
            # captures read data_ready_cycle) and recycle the slot.
            # The stale keys are cut by _squash_iq / _drain right after
            # the abort walk, before any new entry can claim the slot.
            dr = self._slot_dr[slot]
            if dr >= 0:
                dyninst.data_ready_cycle = dr
            dyninst.iq_slot = -1
            self._slot_dyn[slot] = None
            self._slot_free.append(slot)
        dyninst.squashed = True
        dyninst.events |= _ABORT_EVENTS
        dyninst.abort_reason = reason
        self.aborted += 1
        for callback in self.bus.abort:
            callback(dyninst, cycle)

    # ------------------------------------------------------------------
    # Retire.

    def _retire(self, cycle):
        count = 0
        retire_subs = self.bus.retire
        while self.rob and count < self.config.retire_width:
            head = self.rob[0]
            if (head.exec_complete_cycle is None
                    or head.exec_complete_cycle > cycle):
                break
            self.rob.popleft()
            head.retire_cycle = cycle
            head.events |= _RETIRED
            self.renamer.commit(head)
            self.retired += 1
            self._last_retire_cycle = cycle

            inst = head.inst
            # actual_target is the architecturally correct successor for
            # every control transfer (fall-through included), so this is
            # always the next PC the retired stream will execute.
            self.committed_pc = (head.actual_target if inst.is_control_flow
                                 else head.pc + INSTRUCTION_BYTES)
            if inst.is_store:
                self.memory.write(head.eff_addr, head.result)
                self.lsq.remove(head)
            elif inst.is_load:
                self.lsq.remove(head)
            elif inst.is_conditional:
                self.predictor.train_conditional(
                    head.pc, head.history_at_fetch, head.actual_taken,
                    not head.events & _MISPREDICT)
            elif inst.is_indirect:
                self.predictor.train_indirect(head.pc, head.actual_target)

            for callback in retire_subs:
                callback(head, cycle)
            count += 1
            if inst.op is Opcode.HALT:
                self.halted = True
                break

    # ------------------------------------------------------------------
    # End of simulation.

    def _drain(self):
        """Abort everything still in flight when the simulation stops.

        After draining, the renamer's map table describes the committed
        architectural state, enabling validation against the reference
        interpreter.
        """
        cycle = self.cycle
        # Deliver outstanding load data for already-retired loads so the
        # committed register state matches the reference interpreter even
        # when HALT retires while a load's fill is still in flight.
        for due, (dyninst, kind) in self._wheel.drain_ordered():
            if (kind == _COMPLETE_LOAD and not dyninst.squashed
                    and dyninst.retired):
                dyninst.load_complete_cycle = due
                self.renamer.complete(dyninst, dyninst.result, due)
        # Repair the global history before discarding in-flight state:
        # the oldest unretired conditional's fetch-time snapshot holds
        # the true outcomes of every retired conditional (any older
        # misprediction would have squashed it).  After this, the GHR
        # matches what a retire-order engine would have built — the
        # two-speed warm-state contract across hand-offs.
        for dyninst in list(self.rob) + list(self.fetch_queue):
            if dyninst.inst.is_conditional and not dyninst.squashed:
                if dyninst.ghr_before is not None:
                    self.ghr.restore(dyninst.ghr_before)
                break
        while self.fetch_queue:
            self._abort(self.fetch_queue.pop(), cycle, AbortReason.DRAINED)
        while self.rob:
            victim = self.rob.pop()
            victim.squashed = True
            self.renamer.rollback(victim)
            self._abort(victim, cycle, AbortReason.DRAINED)
        # The abort walk recycled every resident's slot; discard the
        # now-stale keys.
        self._iq_ready = []
        self._iq_waiting.clear()
        self.lsq.clear()
        self._wheel.clear()

    def architectural_registers(self):
        """Committed register values; only meaningful after run() returns."""
        return self.renamer.architectural_values()
