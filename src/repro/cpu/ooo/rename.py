"""Register renaming: architectural -> physical register mapping.

Renaming is what lets two writers of the same architectural register
execute out of order (section 2.1).  The model keeps:

* a map table (architectural index -> physical index),
* a free list of physical registers,
* per-physical-register value, ready bit, and ready cycle (the ready cycle
  models bypass timing: a consumer may issue in the same cycle its
  producer's result becomes available).

Mispredict recovery walks squashed instructions youngest-first, restoring
each one's previous mapping — the standard map-checkpoint-free rollback.
"""

from repro.errors import ConfigError, SimulationError
from repro.isa.registers import NUM_REGS, ZERO_REG


class RegisterRenamer:
    """Map table + physical register file."""

    def __init__(self, phys_regs):
        if phys_regs < NUM_REGS + 1:
            raise ConfigError("need more physical than architectural registers")
        self.phys_regs = phys_regs
        # Identity mapping at reset: arch i -> phys i.
        self.map_table = list(range(NUM_REGS))
        self.free_list = list(range(NUM_REGS, phys_regs))
        self.values = [0] * phys_regs
        self.ready = [True] * phys_regs
        self.ready_cycle = [0] * phys_regs
        # Allocation generation per physical register.  A load may retire
        # before its fill returns (Alpha semantics); once the *next* writer
        # of the same architectural register retires, the load's physical
        # register can be freed and reallocated while the fill is still in
        # flight.  All readers have provably issued by then (in-order
        # retirement), so the correct behaviour is to drop the stale fill
        # -- which complete() does by comparing generations.
        self.generation = [0] * phys_regs

    # ------------------------------------------------------------------

    def free_count(self):
        return len(self.free_list)

    def lookup(self, arch_reg):
        """Current physical register holding *arch_reg*."""
        return self.map_table[arch_reg]

    def read_value(self, phys):
        return self.values[phys]

    def is_ready(self, phys, cycle):
        return self.ready[phys] and self.ready_cycle[phys] <= cycle

    def rename(self, dyninst):
        """Rename *dyninst*'s operands; allocate its destination.

        Returns False (leaving no side effects) if no physical register is
        free — the map stage stalls (Event.MAP_STALL_REGS).
        """
        inst = dyninst.inst
        map_table = self.map_table
        dyninst.src_phys = tuple(map_table[arch] for arch in inst.sources)
        dest = inst.dest_reg
        if dest is None:
            dyninst.dest_phys = None
            dyninst.prev_dest_phys = None
            return True
        if not self.free_list:
            return False
        phys = self.free_list.pop()
        self.generation[phys] += 1
        dyninst.dest_phys = phys
        dyninst.dest_gen = self.generation[phys]
        dyninst.prev_dest_phys = self.map_table[dest]
        self.map_table[dest] = phys
        self.ready[phys] = False
        return True

    def complete(self, dyninst, value, cycle):
        """Write *dyninst*'s result; wakes dependents from *cycle* on.

        A write whose physical register has been reallocated since (stale
        load fill; see the generation comment above) is dropped.  Returns
        True iff the write landed, so the core knows whether to wake the
        issue queue's waiters on this physical register.
        """
        phys = dyninst.dest_phys
        if phys is None:
            return False
        if self.generation[phys] != dyninst.dest_gen:
            return False
        self.values[phys] = value
        self.ready[phys] = True
        self.ready_cycle[phys] = cycle
        return True

    def commit(self, dyninst):
        """At retire: the previous mapping of the destination is dead."""
        prev = dyninst.prev_dest_phys
        if prev is not None:
            self.free_list.append(prev)

    def rollback(self, dyninst):
        """Undo one squashed instruction's rename (call youngest-first)."""
        phys = dyninst.dest_phys
        if phys is None:
            return
        dest = dyninst.inst.destination_register()
        if dest is None:
            raise SimulationError("rename bookkeeping out of sync")
        if self.map_table[dest] != phys:
            raise SimulationError(
                "rollback out of order: arch r%d maps to p%d, expected p%d"
                % (dest, self.map_table[dest], phys))
        self.map_table[dest] = dyninst.prev_dest_phys
        self.free_list.append(phys)

    def seed_architectural(self, values):
        """Load architectural register *values* into the mapped physicals.

        Only valid while the renamer is at its reset state (map table
        untouched, nothing in flight) — the two-speed hand-off seeds a
        freshly constructed window core, never a running one.
        """
        if sorted(self.map_table) != list(range(NUM_REGS)):
            raise SimulationError(
                "seed_architectural on a renamer with in-flight state")
        for arch in range(NUM_REGS):
            phys = self.map_table[arch]
            self.values[phys] = 0 if arch == ZERO_REG else values[arch]

    # ------------------------------------------------------------------

    def architectural_values(self):
        """Committed register values (for functional validation)."""
        values = []
        for arch in range(NUM_REGS):
            if arch == ZERO_REG:
                values.append(0)
            else:
                values.append(self.values[self.map_table[arch]])
        return values

    def check_invariants(self):
        """Every physical register is mapped, free, or in-flight exactly once.

        Used by tests and (cheaply) by the core's debug mode to catch
        double-free / leak bugs in rename bookkeeping.
        """
        mapped = set(self.map_table)
        free = set(self.free_list)
        if len(free) != len(self.free_list):
            raise SimulationError("free list contains duplicates")
        if mapped & free:
            raise SimulationError("physical register both mapped and free: %s"
                                  % sorted(mapped & free))
