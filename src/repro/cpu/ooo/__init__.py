"""Out-of-order core package."""

from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.ooo.lsq import LoadStoreQueue
from repro.cpu.ooo.rename import RegisterRenamer

__all__ = ["LoadStoreQueue", "OutOfOrderCore", "RegisterRenamer"]
