"""Load/store queue with conservative memory-dependence handling.

Loads may not issue past an older store whose address is still unknown
(no memory-dependence speculation), and a load whose address matches an
older in-flight store is serviced by store-to-load forwarding.  This is
deliberately the simplest correct policy: it produces the LSQ_REPLAY
stall events the Profiled Event Register reports without needing a
mis-speculation replay machine.
"""

CLEAR = "clear"  # no older-store hazard; access the cache
FORWARD = "forward"  # value available from an older in-flight store
BLOCK = "block"  # an older store's address (or data) is unresolved


class LoadStoreQueue:
    """Program-ordered queue of in-flight memory operations."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = []  # DynInst, ascending seq

    def __len__(self):
        return len(self.entries)

    @property
    def full(self):
        return len(self.entries) >= self.capacity

    def insert(self, dyninst):
        """Add a load/store at map time (entries arrive in seq order)."""
        self.entries.append(dyninst)

    def remove(self, dyninst):
        """Remove at retire."""
        try:
            self.entries.remove(dyninst)
        except ValueError:
            pass  # already squashed

    def squash_younger(self, seq):
        """Drop every entry younger than *seq*."""
        self.entries = [d for d in self.entries if d.seq <= seq]

    def load_status(self, load):
        """Can *load* (address already computed) proceed?

        Returns ``(status, store)`` where status is CLEAR, FORWARD (store
        is the youngest older matching store, already executed so its data
        is known), or BLOCK (some older store is unresolved, or the
        matching store has not produced its data yet).
        """
        match = None
        for entry in self.entries:
            if entry.seq >= load.seq:
                break
            if not entry.inst.is_store:
                continue
            if entry.eff_addr is None:
                return BLOCK, None
            if entry.eff_addr == load.eff_addr:
                match = entry
        if match is None:
            return CLEAR, None
        return FORWARD, match

    def has_unresolved_older_store(self, load):
        """True if some older store has not computed its address yet."""
        for entry in self.entries:
            if entry.seq >= load.seq:
                break
            if entry.inst.is_store and entry.eff_addr is None:
                return True
        return False
