"""Load/store queue with conservative memory-dependence handling.

Loads may not issue past an older store whose address is still unknown
(no memory-dependence speculation), and a load whose address matches an
older in-flight store is serviced by store-to-load forwarding.  This is
deliberately the simplest correct policy: it produces the LSQ_REPLAY
stall events the Profiled Event Register reports without needing a
mis-speculation replay machine.

Dependence checks used to walk the whole queue per load-issue attempt.
The queue now maintains an age-ordered store index on the side:

* ``_unresolved`` — seqs of stores whose address is still unknown,
  kept sorted (stores are inserted in program order and seqs only
  grow), so "is any older store unresolved?" is one comparison against
  the smallest element;
* ``_resolved_by_addr`` — address -> seq-ordered resolved stores, so
  the forwarding match inspects only same-address candidates.

The core reports address computation via :meth:`resolve_store`;
entries inserted with a known address (tests build these directly)
index themselves.  ``entries`` remains the program-ordered list of all
in-flight memory operations.
"""

from bisect import bisect_left
from collections import deque

CLEAR = "clear"  # no older-store hazard; access the cache
FORWARD = "forward"  # value available from an older in-flight store
BLOCK = "block"  # an older store's address (or data) is unresolved


class LoadStoreQueue:
    """Program-ordered queue of in-flight memory operations."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = deque()  # DynInst, ascending seq
        self._stores = deque()  # store subset, ascending seq
        self._unresolved = []  # seqs of address-unknown stores, sorted
        self._resolved_by_addr = {}  # addr -> [stores, ascending seq]

    def __len__(self):
        return len(self.entries)

    @property
    def full(self):
        return len(self.entries) >= self.capacity

    def insert(self, dyninst):
        """Add a load/store at map time (entries arrive in seq order)."""
        self.entries.append(dyninst)
        if dyninst.inst.is_store:
            self._stores.append(dyninst)
            if dyninst.eff_addr is None:
                self._unresolved.append(dyninst.seq)
            else:
                self._index_resolved(dyninst)

    def resolve_store(self, dyninst):
        """The core computed *dyninst*'s effective address (at issue)."""
        seqs = self._unresolved
        index = bisect_left(seqs, dyninst.seq)
        if index < len(seqs) and seqs[index] == dyninst.seq:
            seqs.pop(index)
        self._index_resolved(dyninst)

    def _index_resolved(self, dyninst):
        bucket = self._resolved_by_addr.setdefault(dyninst.eff_addr, [])
        # Stores resolve out of program order; keep each bucket sorted.
        if not bucket or bucket[-1].seq < dyninst.seq:
            bucket.append(dyninst)
        else:
            seqs = [store.seq for store in bucket]
            bucket.insert(bisect_left(seqs, dyninst.seq), dyninst)

    def _unindex_store(self, dyninst):
        if dyninst.eff_addr is None:
            seqs = self._unresolved
            index = bisect_left(seqs, dyninst.seq)
            if index < len(seqs) and seqs[index] == dyninst.seq:
                seqs.pop(index)
            return
        bucket = self._resolved_by_addr.get(dyninst.eff_addr)
        if bucket is None:
            return
        try:
            bucket.remove(dyninst)
        except ValueError:
            return
        if not bucket:
            del self._resolved_by_addr[dyninst.eff_addr]

    def remove(self, dyninst):
        """Remove at retire (always the oldest surviving entry)."""
        entries = self.entries
        if entries and entries[0] is dyninst:
            entries.popleft()
        else:
            try:
                entries.remove(dyninst)
            except ValueError:
                return  # already squashed
        if dyninst.inst.is_store:
            stores = self._stores
            if stores and stores[0] is dyninst:
                stores.popleft()
            else:
                try:
                    stores.remove(dyninst)
                except ValueError:
                    pass
            self._unindex_store(dyninst)

    def squash_younger(self, seq):
        """Drop every entry younger than *seq*."""
        entries = self.entries
        while entries and entries[-1].seq > seq:
            entries.pop()
        stores = self._stores
        while stores and stores[-1].seq > seq:
            self._unindex_store(stores.pop())

    def clear(self):
        """Empty the queue (end-of-simulation drain)."""
        self.entries.clear()
        self._stores.clear()
        del self._unresolved[:]
        self._resolved_by_addr.clear()

    def load_status(self, load):
        """Can *load* (address already computed) proceed?

        Returns ``(status, store)`` where status is CLEAR, FORWARD (store
        is the youngest older matching store, already executed so its data
        is known), or BLOCK (some older store is unresolved, or the
        matching store has not produced its data yet).
        """
        unresolved = self._unresolved
        if unresolved and unresolved[0] < load.seq:
            return BLOCK, None
        bucket = self._resolved_by_addr.get(load.eff_addr)
        if bucket:
            seq = load.seq
            for store in reversed(bucket):
                if store.seq < seq:
                    return FORWARD, store
        return CLEAR, None

    def has_unresolved_older_store(self, load):
        """True if some older store has not computed its address yet."""
        unresolved = self._unresolved
        return bool(unresolved) and unresolved[0] < load.seq
