"""Fast functional profiling: trace-scale statistics without cycle timing.

The paper's Figure 3 samples traces of 10^8-10^9 instructions — far
beyond what a Python cycle-level model can simulate.  For experiments
that need only *event* statistics (retire counts, cache/TLB misses,
branch outcomes, path histories) and not latency registers, this module
provides a 10-30x faster path: the reference interpreter drives cache,
TLB, and branch-predictor models directly, and a ProfileMe-style sampler
selects retired instructions at random intervals.

What it deliberately lacks (use the cycle-level cores when these matter):

* latency registers (no timing exists);
* wrong-path effects (no speculation; aborted samples never appear);
* paired-sampling overlap metrics (no time axis).

Records produced here carry ``fetch_cycle = done_cycle = retired-
instruction index``, valid for ordering but not for latency math.
"""

from dataclasses import dataclass

from repro.analysis.database import ProfileDatabase
from repro.analysis.groundtruth import PcTruth
from repro.cpu.warm import WarmState
from repro.errors import ConfigError
from repro.events import AbortReason, Event
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.mem.hierarchy import MemoryHierarchy
from repro.utils.rng import SamplingRng

# warm.observe returns a plain-int event mask (hot path); records wrap
# it back into Event at the sampling points.
_MISPREDICT = int(Event.MISPREDICT)

# NOTE: repro.profileme imports are deferred into methods: profileme's
# fetch counter imports repro.cpu.probes, so importing it here would
# make repro.cpu's package import circular.


@dataclass
class FunctionalRun:
    """Results of a functional profiling run."""

    program: object
    retired: int
    database: ProfileDatabase
    records: list
    truth: dict  # pc -> PcTruth (event counts; no latencies)
    hierarchy: MemoryHierarchy
    mispredicts: int


class FunctionalProfiler:
    """Interpreter + memory/branch models + retired-instruction sampling.

    The microarchitectural models are no longer owned here: they live in
    a :class:`~repro.cpu.warm.WarmState`, which the two-speed scheduler
    shares between fast-forward and detailed windows.  Passing *warm*
    profiles into (and keeps warming) an existing contract instance;
    otherwise a fresh one is built.
    """

    def __init__(self, program, profile=None, hierarchy=None,
                 collect_truth=True, keep_records=False, warm=None):
        from repro.profileme.unit import ProfileMeConfig

        self.program = program
        self.profile = profile or ProfileMeConfig()
        # ProfileMeConfig validates this at construction, but profile is
        # duck-typed; a nonpositive mean would make every draw raise (or,
        # unclamped, pin the countdown below zero so sampling never fires
        # again).  Fail at construction with the typed error instead.
        if self.profile.mean_interval < 1:
            raise ConfigError("mean_interval must be >= 1, got %r"
                              % (self.profile.mean_interval,))
        self.warm = warm or WarmState(hierarchy=hierarchy)
        self.hierarchy = self.warm.hierarchy
        self.predictor = self.warm.predictor
        self.ghr = self.warm.ghr
        self.collect_truth = collect_truth
        self.keep_records = keep_records
        self._rng = SamplingRng(self.profile.seed)

    def _next_interval(self):
        if self.profile.distribution == "geometric":
            interval = self._rng.geometric_interval(self.profile.mean_interval)
        else:
            interval = self._rng.interval(self.profile.mean_interval,
                                          self.profile.jitter)
        # The run loop decrements then tests `== 0`: an interval of 0
        # would skip that test for the rest of the run.  Clamp so the
        # invariant (countdown always reaches exactly 0) holds even if a
        # custom rng returns a degenerate draw.
        return interval if interval >= 1 else 1

    def run(self, max_instructions=None):
        """Execute and sample; returns a :class:`FunctionalRun`.

        Without ground-truth collection the run takes the decoded-block
        trace cache path (:mod:`repro.cpu.tracecache`): whole basic
        blocks execute as one fused call between sampling points, and
        the profiler spills to per-instruction stepping only when the
        sampling countdown (or the instruction budget) is about to
        expire — so sample records are built from exactly the same
        observation the slow path would make.  Truth collection needs
        per-instruction event attribution, so it stays on the slow path.
        """
        if not self.collect_truth:
            return self._run_fused(max_instructions)
        return self._run_observed(max_instructions)

    def _run_observed(self, max_instructions):
        from repro.profileme.registers import ProfileRecord

        program = self.program
        interp = Interpreter(program)
        observe = self.warm.observe
        path_mask = (1 << self.profile.path_bits) - 1
        context = self.profile.context if self.profile.context is not None \
            else 0

        database = ProfileDatabase()
        records = []
        truth = {}
        countdown = self._next_interval()
        retired = 0
        mispredicts = 0

        for entry in interp.run(max_instructions=max_instructions):
            inst = entry.inst
            events, history = observe(entry.pc, inst, entry.taken,
                                      entry.next_pc, entry.eff_addr)
            if events & _MISPREDICT:
                mispredicts += 1

            if self.collect_truth:
                pc_truth = truth.get(entry.pc)
                if pc_truth is None:
                    pc_truth = PcTruth()
                    truth[entry.pc] = pc_truth
                pc_truth.fetched += 1
                pc_truth.retired += 1
                from repro.analysis.groundtruth import TRACKED_EVENTS

                for flag in TRACKED_EVENTS:
                    if events & flag:
                        pc_truth.events[flag] = \
                            pc_truth.events.get(flag, 0) + 1

            countdown -= 1
            if countdown == 0:
                countdown = self._next_interval()
                addr = None
                if inst.is_memory or inst.is_prefetch:
                    addr = entry.eff_addr
                elif inst.op in (Opcode.JMP, Opcode.RET):
                    addr = entry.next_pc
                record = ProfileRecord(
                    context=context, pc=entry.pc, op=inst.op, addr=addr,
                    events=Event(events), abort_reason=AbortReason.NONE,
                    history=history & path_mask,
                    fetch_to_map=None, map_to_data_ready=None,
                    data_ready_to_issue=None, issue_to_retire_ready=None,
                    retire_ready_to_retire=None,
                    load_issue_to_completion=None,
                    fetch_cycle=retired, done_cycle=retired)
                database.add_record(record)
                if self.keep_records:
                    records.append(record)
            retired += 1

        return FunctionalRun(program=program, retired=retired,
                             database=database, records=records,
                             truth=truth, hierarchy=self.hierarchy,
                             mispredicts=mispredicts)

    def _run_fused(self, max_instructions):
        """Trace-cache execution: fused blocks between sampling points."""
        from repro.cpu.tracecache import BlockCache
        from repro.profileme.registers import ProfileRecord

        program = self.program
        interp = Interpreter(program)
        state = interp.state
        fetch = program.fetch
        warm = self.warm
        observe = warm.observe
        cache = BlockCache(program)
        path_mask = (1 << self.profile.path_bits) - 1
        context = self.profile.context if self.profile.context is not None \
            else 0

        database = ProfileDatabase()
        records = []
        countdown = self._next_interval()
        retired = 0
        mispredicts = 0
        ctr = [0]  # mispredicts observed inside fused blocks
        limit = max_instructions

        while not state.halted and (limit is None or retired < limit):
            block = cache.lookup(state.pc)
            # A fused block must not contain the sampling point: leave
            # at least one instruction of countdown for the spill path.
            budget = countdown - 1
            if limit is not None and limit - retired < budget:
                budget = limit - retired
            if block.fused is not None and block.length <= budget:
                done = block.fused(state, warm, budget, ctr)
                retired += done
                countdown -= done
                continue
            # Spill: the sampling point (or the instruction limit) is
            # closer than one block, or the instruction is unfusable.
            # Step exactly as the observed path would.
            pc = state.pc
            inst = fetch(pc)
            taken, next_pc, eff_addr = inst.exec_fn(state, inst, pc,
                                                    program)
            events, history = observe(pc, inst, taken, next_pc, eff_addr)
            if events & _MISPREDICT:
                mispredicts += 1
            countdown -= 1
            if countdown == 0:
                countdown = self._next_interval()
                addr = None
                if inst.is_memory or inst.is_prefetch:
                    addr = eff_addr
                elif inst.op in (Opcode.JMP, Opcode.RET):
                    addr = next_pc
                record = ProfileRecord(
                    context=context, pc=pc, op=inst.op, addr=addr,
                    events=Event(events), abort_reason=AbortReason.NONE,
                    history=history & path_mask,
                    fetch_to_map=None, map_to_data_ready=None,
                    data_ready_to_issue=None, issue_to_retire_ready=None,
                    retire_ready_to_retire=None,
                    load_issue_to_completion=None,
                    fetch_cycle=retired, done_cycle=retired)
                database.add_record(record)
                if self.keep_records:
                    records.append(record)
            state.pc = next_pc
            retired += 1

        interp.retired = retired
        return FunctionalRun(program=program, retired=retired,
                             database=database, records=records,
                             truth={}, hierarchy=self.hierarchy,
                             mispredicts=mispredicts + ctr[0])
