"""Dynamic instruction record.

A :class:`DynInst` is one fetched instruction instance travelling through a
core.  It accumulates exactly the information the ProfileMe hardware can
observe — stage timestamps (the Latency Registers of Table 1), the event
bit-field, effective/target addresses, and the branch history captured at
fetch — plus simulator-internal bookkeeping (rename state, squash flag).

ProfileMe never reads the bookkeeping fields: the profile capture path in
``repro.profileme.registers`` copies only the architecturally observable
subset into a ProfileRecord, keeping the hardware model honest.
"""

from repro.events import AbortReason, Event

# Raw flag values: the cores OR events into `DynInst.events` millions of
# times per run, and IntFlag's operators pay an enum lookup per `|`.
# The field is therefore a plain int bit-field; profile capture wraps it
# back into an Event at the sampling points.
_RETIRED = int(Event.RETIRED)
_ABORTED = int(Event.ABORTED)


class DynInst:
    """One in-flight instruction instance."""

    __slots__ = (
        # Identity.
        "seq", "pc", "inst", "context",
        # Stage timestamps (None until reached).
        "fetch_cycle", "map_cycle", "data_ready_cycle", "issue_cycle",
        "exec_complete_cycle", "retire_cycle", "load_complete_cycle",
        # Observable execution facts.
        "events", "abort_reason", "eff_addr",
        "predicted_taken", "predicted_target",
        "actual_taken", "actual_target",
        "history_at_fetch",
        # ProfileMe tag (None = not profiled).
        "profile_tag",
        # Simulator bookkeeping (invisible to profiling hardware).
        "dest_phys", "dest_gen", "prev_dest_phys", "src_phys", "result",
        "squashed", "ghr_before", "ghr_after", "iq_slot",
    )

    def __init__(self, seq, pc, inst, fetch_cycle, context=0):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.context = context

        self.fetch_cycle = fetch_cycle
        self.map_cycle = None
        self.data_ready_cycle = None
        self.issue_cycle = None
        self.exec_complete_cycle = None
        self.retire_cycle = None
        self.load_complete_cycle = None

        self.events = 0  # int bit-field of Event flags (see above)
        self.abort_reason = AbortReason.NONE
        self.eff_addr = None
        self.predicted_taken = None
        self.predicted_target = None
        self.actual_taken = None
        self.actual_target = None
        self.history_at_fetch = 0

        self.profile_tag = None

        self.dest_phys = None
        self.dest_gen = 0
        self.prev_dest_phys = None
        self.src_phys = ()
        self.result = 0
        self.squashed = False
        self.ghr_before = None
        self.ghr_after = None
        self.iq_slot = -1  # issue-queue slot index while resident

    # ------------------------------------------------------------------
    # Derived latencies (Table 1).

    @property
    def retired(self):
        return bool(self.events & _RETIRED)

    @property
    def aborted(self):
        return bool(self.events & _ABORTED)

    def latency(self, start, end):
        """Cycles from timestamp attribute *start* to *end*, or None."""
        begin = getattr(self, start)
        finish = getattr(self, end)
        if begin is None or finish is None:
            return None
        return finish - begin

    @property
    def fetch_to_map(self):
        return self.latency("fetch_cycle", "map_cycle")

    @property
    def map_to_data_ready(self):
        return self.latency("map_cycle", "data_ready_cycle")

    @property
    def data_ready_to_issue(self):
        return self.latency("data_ready_cycle", "issue_cycle")

    @property
    def issue_to_retire_ready(self):
        return self.latency("issue_cycle", "exec_complete_cycle")

    @property
    def retire_ready_to_retire(self):
        return self.latency("exec_complete_cycle", "retire_cycle")

    @property
    def load_issue_to_completion(self):
        return self.latency("issue_cycle", "load_complete_cycle")

    @property
    def fetch_to_retire_ready(self):
        """The paper's "in progress" interval (section 5.2.3, footnote 3)."""
        return self.latency("fetch_cycle", "exec_complete_cycle")

    def __repr__(self):
        return ("DynInst(seq=%d, pc=%#x, %s, fetch=%s, retire=%s, events=%s)"
                % (self.seq, self.pc, self.inst.op.value, self.fetch_cycle,
                   self.retire_cycle, self.events))
