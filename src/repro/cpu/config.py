"""Machine configurations for the timing cores.

``MachineConfig.alpha21264_like()`` is the default out-of-order machine:
4-wide fetch/map/issue, ~80 in-flight instructions, parameters in the
neighbourhood of the Alpha 21264 the paper simulates.  Exact parity with
the real chip is neither possible nor needed — the experiments depend on
having genuine out-of-order issue, speculation, and realistic latency
spreads, not on matching the 21264's every port count.
"""

from dataclasses import dataclass, field

from repro.branch.predictors import PredictorConfig
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class FunctionalUnits:
    """Per-class functional-unit counts (issue bandwidth per cycle)."""

    ialu: int = 4
    imul: int = 1
    fp: int = 2
    mem_ports: int = 2

    def __post_init__(self):
        for name in ("ialu", "imul", "fp", "mem_ports"):
            if getattr(self, name) < 1:
                raise ConfigError("need >= 1 %s unit" % name)


@dataclass(frozen=True)
class MachineConfig:
    """Complete parameterization of a simulated machine."""

    name: str = "ooo-4wide"

    # Widths.
    fetch_width: int = 4
    map_width: int = 4
    issue_width: int = 4
    retire_width: int = 8

    # Window sizes.
    rob_entries: int = 80
    iq_entries: int = 20
    lsq_entries: int = 32
    phys_regs: int = 80  # 32 architectural + 48 rename registers
    fetch_queue_entries: int = 16

    # Pipeline depths / penalties.
    frontend_delay: int = 2  # fetch -> earliest map (slot + rename stages)
    mispredict_penalty: int = 6  # squash -> first good-path fetch cycle gap

    units: FunctionalUnits = field(default_factory=FunctionalUnits)
    memory: HierarchyConfig = field(default_factory=HierarchyConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)

    def __post_init__(self):
        if self.phys_regs < 32 + self.map_width:
            raise ConfigError(
                "phys_regs=%d leaves no rename headroom" % self.phys_regs)
        for name in ("fetch_width", "map_width", "issue_width",
                     "retire_width", "rob_entries", "iq_entries",
                     "lsq_entries", "fetch_queue_entries"):
            if getattr(self, name) < 1:
                raise ConfigError("%s must be >= 1" % name)
        if self.frontend_delay < 0 or self.mispredict_penalty < 0:
            raise ConfigError("delays must be >= 0")

    @staticmethod
    def alpha21264_like(**overrides):
        """The default out-of-order configuration used by the experiments."""
        return MachineConfig(name=overrides.pop("name", "alpha21264-like"),
                             **overrides)

    @staticmethod
    def alpha21164_like(**overrides):
        """In-order machine parameters (used by the in-order core).

        Only the fields the in-order core reads are meaningful: widths,
        memory, predictor, and mispredict_penalty.
        """
        defaults = dict(
            name="alpha21164-like",
            fetch_width=4,
            issue_width=4,
            retire_width=4,
            mispredict_penalty=5,
        )
        defaults.update(overrides)
        return MachineConfig(**defaults)

    @property
    def max_inflight(self):
        """Upper bound on simultaneously in-flight instructions.

        This is the quantity the paper uses to size the paired-sampling
        window W ("conservatively chosen to include any pair of
        instructions that may be simultaneously in flight").
        """
        return self.rob_entries + (self.frontend_delay + 1) * self.fetch_width
