"""Observation interface between cores and profiling hardware.

Both cores publish their activity through :class:`Probe` callbacks.  The
ProfileMe unit, the event-counter baseline, and the ground-truth collector
are all probes: they see the same machine through the same pinhole, which
is what makes "counters vs. ProfileMe on identical executions"
(Figure 2) a controlled comparison.

Fetch slots
-----------
``on_fetch_slots`` reports one entry per *fetch opportunity* — the paper's
term for the fetch_width slots available each cycle.  A slot carries a
DynInst (predicted-path instruction), a bare PC (instruction present in the
fetch block but off the predicted path), or nothing (fetcher stalled /
beyond a taken branch with no instruction).  This is exactly the
information the section 4.1.1 instruction-selection hardware works from.
"""

from dataclasses import dataclass
from typing import Optional

from repro.cpu.dynops import DynInst

SLOT_INST = "inst"  # predicted-path instruction (enters the pipeline)
SLOT_OFFPATH = "offpath"  # instruction in the block, off the predicted path
SLOT_EMPTY = "empty"  # no instruction available this opportunity


@dataclass
class FetchSlot:
    """One fetch opportunity in one cycle."""

    __slots__ = ("kind", "dyninst", "pc")

    kind: str
    dyninst: Optional[DynInst]
    pc: Optional[int]


def inst_slot(dyninst):
    return FetchSlot(kind=SLOT_INST, dyninst=dyninst, pc=dyninst.pc)


def offpath_slot(pc):
    return FetchSlot(kind=SLOT_OFFPATH, dyninst=None, pc=pc)


_EMPTY_SLOT = FetchSlot(kind=SLOT_EMPTY, dyninst=None, pc=None)


def empty_slot():
    # Empty slots carry no per-instance state; share one object (probes
    # must treat slots as read-only, which they do).
    return _EMPTY_SLOT


class Probe:
    """Base class: overriding any subset of callbacks is fine."""

    def attach(self, core):
        """Called once when the probe is registered with a core."""

    def on_fetch_slots(self, cycle, slots):
        """All fetch opportunities of *cycle*, in slot order."""

    def on_issue(self, dyninst, cycle):
        """*dyninst* was issued to a functional unit at *cycle*."""

    def on_retire(self, dyninst, cycle):
        """*dyninst* retired (architecturally committed) at *cycle*."""

    def on_abort(self, dyninst, cycle):
        """*dyninst* left the machine without retiring at *cycle*."""

    def on_cycle_end(self, cycle):
        """The core finished simulating *cycle*."""
