"""Processor models: out-of-order (21264-like) and in-order (21164-like)."""

from repro.cpu.config import FunctionalUnits, MachineConfig
from repro.cpu.dynops import DynInst
from repro.cpu.functional import FunctionalProfiler, FunctionalRun
from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.smt import SmtCore, smt_speedup
from repro.cpu.probes import (SLOT_EMPTY, SLOT_INST, SLOT_OFFPATH, FetchSlot,
                              Probe)

__all__ = [
    "DynInst",
    "FetchSlot",
    "FunctionalProfiler",
    "FunctionalRun",
    "FunctionalUnits",
    "InOrderCore",
    "MachineConfig",
    "OutOfOrderCore",
    "Probe",
    "SLOT_EMPTY",
    "SLOT_INST",
    "SLOT_OFFPATH",
    "SmtCore",
    "smt_speedup",
]
