"""Simultaneous multithreading: hardware contexts sharing one pipeline.

ProfileMe was designed at DIGITAL while the SMT Alpha (21464) was taking
shape, and the paper's Profiled Context Register is exactly what
attributes samples on such a machine.  This model runs T hardware
contexts *simultaneously*:

* **shared per cycle**: issue bandwidth, functional units, memory
  hierarchy (both L1s!), branch predictor tables;
* **per context (partitioned)**: fetch/map front end, rename registers,
  issue-queue entries, ROB/LSQ, global history register — the
  Pentium-4-style partitioned-queue design point, which keeps per-thread
  in-order semantics trivially correct;
* **fetch policy**: round-robin, one context fetches per cycle.

Unlike :mod:`repro.multiprog` (time-sliced quanta), contexts here
genuinely overlap cycle by cycle: a memory-bound thread's stall cycles
are filled by a compute-bound partner — the classic SMT win, measurable
with `smt_speedup`.

One ProfileMe unit attaches to the whole machine (as the hardware
would): it samples the merged fetch stream and the Profiled Context
Register stamps each record with its thread, so per-thread profiles fall
out of one sampling infrastructure.
"""

from typing import List

from repro.branch.predictors import BranchPredictor
from repro.cpu.config import MachineConfig
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe
from repro.engine.core import CoreBase
from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy


class _Relay(Probe):
    """Forwards one thread core's probe events onto the SMT-level bus.

    Cycle ends are suppressed: the SMT machine announces its own, once.
    """

    def __init__(self, bus):
        self._bus = bus

    def on_fetch_slots(self, cycle, slots):
        for callback in self._bus.fetch_slots:
            callback(cycle, slots)

    def on_issue(self, dyninst, cycle):
        for callback in self._bus.issue:
            callback(dyninst, cycle)

    def on_retire(self, dyninst, cycle):
        for callback in self._bus.retire:
            callback(dyninst, cycle)

    def on_abort(self, dyninst, cycle):
        for callback in self._bus.abort:
            callback(dyninst, cycle)


class SmtCore(CoreBase):
    """T-context SMT machine over the out-of-order pipeline model."""

    def __init__(self, programs, config=None, partition=True):
        if not 1 <= len(programs) <= 4:
            raise ConfigError("SMT model supports 1..4 contexts")
        super().__init__(config or MachineConfig.alpha21264_like())
        threads = len(programs)
        thread_config = self.config
        if partition and threads > 1:
            # Partition the window resources evenly across contexts.
            thread_config = MachineConfig.alpha21264_like(
                name=self.config.name + "-smt%d" % threads,
                fetch_width=self.config.fetch_width,
                map_width=self.config.map_width,
                issue_width=self.config.issue_width,
                retire_width=self.config.retire_width,
                rob_entries=max(8, self.config.rob_entries // threads),
                iq_entries=max(4, self.config.iq_entries // threads),
                lsq_entries=max(4, self.config.lsq_entries // threads),
                phys_regs=max(40, 32 + (self.config.phys_regs - 32)
                              // threads),
                fetch_queue_entries=self.config.fetch_queue_entries,
                frontend_delay=self.config.frontend_delay,
                mispredict_penalty=self.config.mispredict_penalty,
                units=self.config.units,
                memory=self.config.memory,
                predictor=self.config.predictor,
            )

        self.hierarchy = MemoryHierarchy(self.config.memory)
        self.predictor = BranchPredictor(self.config.predictor)
        self.threads: List[OutOfOrderCore] = []
        for index, program in enumerate(programs):
            core = OutOfOrderCore(program, config=thread_config,
                                  hierarchy=self.hierarchy,
                                  predictor=self.predictor,
                                  context=index)
            core.add_probe(_Relay(self.bus))
            self.threads.append(core)

    # ------------------------------------------------------------------

    def request_fetch_stall(self, cycles):
        """Profiling-interrupt cost: stalls every context's front end."""
        for core in self.threads:
            core.request_fetch_stall(cycles)

    @property
    def halted(self):
        return all(core.halted for core in self.threads)

    @property
    def retired(self):
        return sum(core.retired for core in self.threads)

    @property
    def fetched(self):
        return sum(core.fetched for core in self.threads)

    @property
    def aborted(self):
        return sum(core.aborted for core in self.threads)

    @property
    def mispredicts(self):
        return sum(core.mispredicts for core in self.threads)

    # ------------------------------------------------------------------

    def _register_probes(self, registry):
        """The SMT machine's whole namespace, built in one place.

        Each context contributes its own ``cpu<ctx>.*`` subtree (the
        same shape a single-context machine exposes, which is what the
        cross-core parity test pins); the machine adds ``smt.*``
        aggregates; the *shared* hierarchy and predictor register
        exactly once — registering them per thread would collide, and
        they genuinely are one structure.
        """
        for core in self.threads:
            core._register_core_probes(registry)
            core._register_pipeline_probes(registry)
        registry.register("smt.threads", lambda: len(self.threads),
                          kind="gauge", unit="contexts",
                          description="hardware contexts configured")
        registry.register("smt.cycles", lambda: self.cycle,
                          kind="counter", unit="cycles",
                          description="machine cycles simulated")
        registry.register("smt.retired", lambda: self.retired,
                          kind="counter", unit="instructions",
                          description="instructions retired, all contexts")
        registry.register("smt.fetched", lambda: self.fetched,
                          kind="counter", unit="instructions",
                          description="instructions fetched, all contexts")
        registry.register("smt.aborted", lambda: self.aborted,
                          kind="counter", unit="instructions",
                          description="instructions aborted, all contexts")
        registry.register("smt.mispredicts", lambda: self.mispredicts,
                          kind="counter", unit="branches",
                          description="mispredicted branches, all contexts")
        registry.register("smt.ipc", lambda: self.ipc,
                          kind="gauge", unit="instructions/cycle",
                          description="aggregate retired IPC")
        registry.register("smt.halted", lambda: int(self.halted),
                          kind="gauge", unit="bool",
                          description="1 when every context has halted")
        self.hierarchy.register_probes(registry)
        self.predictor.register_probes(registry)

    def step_cycle(self):
        """One machine cycle: all contexts advance, sharing the back end."""
        cycle = self.cycle
        active = [core for core in self.threads if not core.halted]

        for core in active:
            core.cycle = cycle
            core._process_completions(cycle)
        for core in active:
            if not core.halted:
                core._retire(cycle)

        # Shared issue: rotate the starting context for fairness.
        units = {
            "ialu": self.config.units.ialu,
            "imul": self.config.units.imul,
            "fp": self.config.units.fp,
            "mem": self.config.units.mem_ports,
        }
        budget = self.config.issue_width
        order = active[cycle % len(active):] + active[:cycle % len(active)] \
            if active else []
        for core in order:
            if not core.halted:
                budget = core._issue(cycle, units=units, budget=budget)

        for core in order:
            if not core.halted:
                core._map(cycle)

        # Fetch policy: ICOUNT (Tullsen et al.) — fetch the context with
        # the fewest in-flight instructions, rotating ties.  A stalled
        # memory-bound thread fills the window and naturally yields the
        # front end to its partner; plain round-robin would halve a
        # compute-bound thread's fetch bandwidth.
        if order:
            fetcher = min(order, key=lambda core: (
                len(core.rob) + len(core.fetch_queue),
                (core.context - cycle) % len(self.threads)))
            if not fetcher.halted:
                fetcher._fetch(cycle)

        for callback in self.bus.cycle_end:
            callback(cycle)
        self.cycle = cycle + 1

    advance = step_cycle

    def run(self, max_cycles=200_000, max_retired=None, deadlock_limit=None,
            drain=True):
        """Run until every context halts; returns total machine cycles.

        Unlike the single-context cores, exhausting *max_cycles* without
        halting raises: an SMT schedule that never finishes is a bug in
        the sharing logic, not a valid outcome.  Per-thread deadlocks
        are caught by the member cores' own bookkeeping, so the engine's
        machine-level deadlock check is off by default.
        """
        start = self.cycle
        ran = super().run(max_cycles=max_cycles, max_retired=max_retired,
                          deadlock_limit=deadlock_limit, drain=False)
        if (not self.halted and max_cycles is not None
                and self.cycle - start >= max_cycles
                and (max_retired is None or self.retired < max_retired)):
            raise ConfigError("SMT run exceeded %d cycles" % max_cycles)
        if drain:
            self._drain()
        return ran

    def _drain(self):
        for core in self.threads:
            core._drain()


def smt_speedup(programs, config=None, max_cycles=500_000):
    """Throughput of SMT vs running the same programs back to back.

    Returns (smt_cycles, serial_cycles, speedup).  Speedup > 1 means the
    contexts covered each other's stalls.
    """
    serial = 0
    for program in programs:
        core = OutOfOrderCore(program, config=config)
        serial += core.run(max_cycles=max_cycles)
    smt = SmtCore(programs, config=config)
    smt_cycles = smt.run(max_cycles=max_cycles)
    return smt_cycles, serial, serial / smt_cycles
