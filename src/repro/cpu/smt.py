"""Simultaneous multithreading: hardware contexts sharing one pipeline.

ProfileMe was designed at DIGITAL while the SMT Alpha (21464) was taking
shape, and the paper's Profiled Context Register is exactly what
attributes samples on such a machine.  This model runs T hardware
contexts *simultaneously*:

* **shared per cycle**: issue bandwidth, functional units, memory
  hierarchy (both L1s!), branch predictor tables;
* **per context (partitioned)**: fetch/map front end, rename registers,
  issue-queue entries, ROB/LSQ, global history register — the
  Pentium-4-style partitioned-queue design point, which keeps per-thread
  in-order semantics trivially correct;
* **fetch policy**: round-robin, one context fetches per cycle.

Unlike :mod:`repro.multiprog` (time-sliced quanta), contexts here
genuinely overlap cycle by cycle: a memory-bound thread's stall cycles
are filled by a compute-bound partner — the classic SMT win, measurable
with `smt_speedup`.

One ProfileMe unit attaches to the whole machine (as the hardware
would): it samples the merged fetch stream and the Profiled Context
Register stamps each record with its thread, so per-thread profiles fall
out of one sampling infrastructure.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.config import MachineConfig
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe
from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy
from repro.branch.predictors import BranchPredictor


class _Relay(Probe):
    """Forwards one thread core's probe events to the SMT-level probes.

    Cycle ends are suppressed: the SMT machine announces its own, once.
    """

    def __init__(self, smt):
        self._smt = smt

    def on_fetch_slots(self, cycle, slots):
        for probe in self._smt.probes:
            probe.on_fetch_slots(cycle, slots)

    def on_issue(self, dyninst, cycle):
        for probe in self._smt.probes:
            probe.on_issue(dyninst, cycle)

    def on_retire(self, dyninst, cycle):
        for probe in self._smt.probes:
            probe.on_retire(dyninst, cycle)

    def on_abort(self, dyninst, cycle):
        for probe in self._smt.probes:
            probe.on_abort(dyninst, cycle)


class SmtCore:
    """T-context SMT machine over the out-of-order pipeline model."""

    def __init__(self, programs, config=None, partition=True):
        if not 1 <= len(programs) <= 4:
            raise ConfigError("SMT model supports 1..4 contexts")
        self.config = config or MachineConfig.alpha21264_like()
        threads = len(programs)
        thread_config = self.config
        if partition and threads > 1:
            # Partition the window resources evenly across contexts.
            thread_config = MachineConfig.alpha21264_like(
                name=self.config.name + "-smt%d" % threads,
                fetch_width=self.config.fetch_width,
                map_width=self.config.map_width,
                issue_width=self.config.issue_width,
                retire_width=self.config.retire_width,
                rob_entries=max(8, self.config.rob_entries // threads),
                iq_entries=max(4, self.config.iq_entries // threads),
                lsq_entries=max(4, self.config.lsq_entries // threads),
                phys_regs=max(40, 32 + (self.config.phys_regs - 32)
                              // threads),
                fetch_queue_entries=self.config.fetch_queue_entries,
                frontend_delay=self.config.frontend_delay,
                mispredict_penalty=self.config.mispredict_penalty,
                units=self.config.units,
                memory=self.config.memory,
                predictor=self.config.predictor,
            )

        self.hierarchy = MemoryHierarchy(self.config.memory)
        self.predictor = BranchPredictor(self.config.predictor)
        self.threads: List[OutOfOrderCore] = []
        for index, program in enumerate(programs):
            core = OutOfOrderCore(program, config=thread_config,
                                  hierarchy=self.hierarchy,
                                  predictor=self.predictor,
                                  context=index)
            core.add_probe(_Relay(self))
            self.threads.append(core)

        self.probes = []
        self.cycle = 0

    # ------------------------------------------------------------------

    def add_probe(self, probe):
        self.probes.append(probe)
        probe.attach(self)
        return probe

    def request_fetch_stall(self, cycles):
        """Profiling-interrupt cost: stalls every context's front end."""
        for core in self.threads:
            core.request_fetch_stall(cycles)

    @property
    def halted(self):
        return all(core.halted for core in self.threads)

    @property
    def retired(self):
        return sum(core.retired for core in self.threads)

    @property
    def ipc(self):
        if self.cycle == 0:
            return 0.0
        return self.retired / self.cycle

    # ------------------------------------------------------------------

    def step_cycle(self):
        """One machine cycle: all contexts advance, sharing the back end."""
        cycle = self.cycle
        active = [core for core in self.threads if not core.halted]

        for core in active:
            core.cycle = cycle
            core._process_completions(cycle)
        for core in active:
            if not core.halted:
                core._retire(cycle)

        # Shared issue: rotate the starting context for fairness.
        units = {
            "ialu": self.config.units.ialu,
            "imul": self.config.units.imul,
            "fp": self.config.units.fp,
            "mem": self.config.units.mem_ports,
        }
        budget = self.config.issue_width
        order = active[cycle % len(active):] + active[:cycle % len(active)] \
            if active else []
        for core in order:
            if not core.halted:
                budget = core._issue(cycle, units=units, budget=budget)

        for core in order:
            if not core.halted:
                core._map(cycle)

        # Fetch policy: ICOUNT (Tullsen et al.) — fetch the context with
        # the fewest in-flight instructions, rotating ties.  A stalled
        # memory-bound thread fills the window and naturally yields the
        # front end to its partner; plain round-robin would halve a
        # compute-bound thread's fetch bandwidth.
        if order:
            fetcher = min(order, key=lambda core: (
                len(core.rob) + len(core.fetch_queue),
                (core.context - cycle) % len(self.threads)))
            if not fetcher.halted:
                fetcher._fetch(cycle)

        for probe in self.probes:
            probe.on_cycle_end(cycle)
        self.cycle = cycle + 1

    def run(self, max_cycles=200_000):
        """Run until every context halts; returns total machine cycles."""
        start = self.cycle
        while not self.halted:
            if self.cycle - start >= max_cycles:
                raise ConfigError("SMT run exceeded %d cycles" % max_cycles)
            self.step_cycle()
        for core in self.threads:
            core._drain()
        return self.cycle - start


def smt_speedup(programs, config=None, max_cycles=500_000):
    """Throughput of SMT vs running the same programs back to back.

    Returns (smt_cycles, serial_cycles, speedup).  Speedup > 1 means the
    contexts covered each other's stalls.
    """
    serial = 0
    for program in programs:
        core = OutOfOrderCore(program, config=config)
        serial += core.run(max_cycles=max_cycles)
    smt = SmtCore(programs, config=config)
    smt_cycles = smt.run(max_cycles=max_cycles)
    return smt_cycles, serial, serial / smt_cycles
