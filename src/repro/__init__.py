"""ProfileMe reproduction package.

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure, and
docs/ for prose deep-dives (hardware model, statistics, workloads).

The most common entry points are re-exported here::

    from repro import run_profiled, ProfileMeConfig, suite_program

    run = run_profiled(suite_program("gcc"), profile=ProfileMeConfig(
        mean_interval=200, paired=True))
"""

from repro.harness import ProfiledRun, make_core, run_profiled, \
    run_with_counter
from repro.profileme import (GroupRecord, PairedRecord, ProfileMeConfig,
                             ProfileRecord)
from repro.workloads import (classic_kernel, fig2_loop, fig7_three_loops,
                             stall_kernel, suite_program)

__version__ = "1.0.0"

__all__ = [
    "GroupRecord",
    "PairedRecord",
    "ProfileMeConfig",
    "ProfileRecord",
    "ProfiledRun",
    "classic_kernel",
    "fig2_loop",
    "fig7_three_loops",
    "make_core",
    "run_profiled",
    "run_with_counter",
    "stall_kernel",
    "suite_program",
]
