"""Opcode definitions for the Alpha-like RISC ISA used by the simulators.

The ISA is deliberately small: enough to express the control-flow and memory
behaviour the ProfileMe experiments need (loops, data-dependent branches,
indirect jumps, calls/returns, loads/stores with computed addresses), while
keeping the functional semantics trivially verifiable.

Opcodes are grouped into *classes* that determine which functional unit
executes them and their nominal execution latency; this mirrors how the
Alpha 21264 schedules instructions onto its integer/FP/memory pipes.
"""

import enum


class OpClass(enum.Enum):
    """Functional-unit class of an opcode."""

    IALU = "ialu"  # single-cycle integer ALU
    IMUL = "imul"  # pipelined integer multiplier
    FP = "fp"  # floating-point pipe (modelled with integer semantics)
    LOAD = "load"  # memory read
    STORE = "store"  # memory write
    BRANCH = "branch"  # conditional/unconditional direct branches
    JUMP = "jump"  # indirect jumps, calls, returns
    NOP = "nop"  # no-ops (and HALT)


class Opcode(enum.Enum):
    """All instructions understood by the reference interpreter and cores."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    CMPLT = "cmplt"  # dest = 1 if src1 < src2 (signed) else 0
    CMPEQ = "cmpeq"  # dest = 1 if src1 == src2 else 0
    CMPLE = "cmple"  # dest = 1 if src1 <= src2 (signed) else 0
    LDA = "lda"  # dest = src1 + imm  (load address / add immediate)
    LDI = "ldi"  # dest = imm

    # Integer multiply (long latency).
    MUL = "mul"

    # "Floating point" pipe: integer semantics, FP latency/FU class.  The
    # timing experiments only need a long-latency, separately-scheduled pipe.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    # Memory.
    LD = "ld"  # dest = mem[src1 + imm]
    ST = "st"  # mem[src1 + imm] = src2
    PREFETCH = "prefetch"  # hint: bring mem[src1 + imm] into the D-cache

    # Control flow.
    BR = "br"  # unconditional direct branch to target
    BEQ = "beq"  # branch to target if src1 == 0
    BNE = "bne"  # branch to target if src1 != 0
    BLT = "blt"  # branch to target if src1 < 0 (signed)
    BGE = "bge"  # branch to target if src1 >= 0 (signed)
    JMP = "jmp"  # indirect jump to address in src1
    JSR = "jsr"  # call: dest = return address, jump to target
    RET = "ret"  # return: jump to address in src1

    # Misc.
    NOP = "nop"
    HALT = "halt"  # stop the simulation


_OP_CLASS = {
    Opcode.ADD: OpClass.IALU,
    Opcode.SUB: OpClass.IALU,
    Opcode.AND: OpClass.IALU,
    Opcode.OR: OpClass.IALU,
    Opcode.XOR: OpClass.IALU,
    Opcode.SLL: OpClass.IALU,
    Opcode.SRL: OpClass.IALU,
    Opcode.CMPLT: OpClass.IALU,
    Opcode.CMPEQ: OpClass.IALU,
    Opcode.CMPLE: OpClass.IALU,
    Opcode.LDA: OpClass.IALU,
    Opcode.LDI: OpClass.IALU,
    Opcode.MUL: OpClass.IMUL,
    Opcode.FADD: OpClass.FP,
    Opcode.FSUB: OpClass.FP,
    Opcode.FMUL: OpClass.FP,
    Opcode.FDIV: OpClass.FP,
    Opcode.LD: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.PREFETCH: OpClass.LOAD,
    Opcode.BR: OpClass.BRANCH,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JMP: OpClass.JUMP,
    Opcode.JSR: OpClass.JUMP,
    Opcode.RET: OpClass.JUMP,
    Opcode.NOP: OpClass.NOP,
    Opcode.HALT: OpClass.NOP,
}

# Nominal execute latency (cycles) per opcode class; loads/stores add memory
# hierarchy latency on top of their 1-cycle address generation.
_CLASS_LATENCY = {
    OpClass.IALU: 1,
    OpClass.IMUL: 7,
    OpClass.FP: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.NOP: 1,
}

_LATENCY_OVERRIDE = {
    Opcode.FDIV: 12,
}

CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)
DIRECT_BRANCHES = CONDITIONAL_BRANCHES | {Opcode.BR, Opcode.JSR}
INDIRECT_JUMPS = frozenset({Opcode.JMP, Opcode.RET})
CONTROL_FLOW = DIRECT_BRANCHES | INDIRECT_JUMPS


# Functional-unit pool (MachineConfig.units field name) per opcode
# class: which execution resource the timing cores schedule against.
_FU_POOL = {
    OpClass.IALU: "ialu",
    OpClass.IMUL: "imul",
    OpClass.FP: "fp",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
    OpClass.BRANCH: "ialu",
    OpClass.JUMP: "ialu",
    OpClass.NOP: "ialu",
}


def op_class(op):
    """Return the :class:`OpClass` of *op*."""
    return _OP_CLASS[op]


def fu_pool(op):
    """Return the functional-unit pool name *op* issues to."""
    return _FU_POOL[_OP_CLASS[op]]


def exec_latency(op):
    """Return the nominal execute latency of *op* in cycles."""
    return _LATENCY_OVERRIDE.get(op, _CLASS_LATENCY[_OP_CLASS[op]])


def is_conditional_branch(op):
    """True for BEQ/BNE/BLT/BGE."""
    return op in CONDITIONAL_BRANCHES


def is_control_flow(op):
    """True for every opcode that can change the PC."""
    return op in CONTROL_FLOW


def writes_register(op):
    """True if the opcode produces a destination-register value."""
    if op is Opcode.PREFETCH:
        return False  # a hint: no architectural effect at all
    cls = _OP_CLASS[op]
    if cls in (OpClass.IALU, OpClass.IMUL, OpClass.FP, OpClass.LOAD):
        return True
    return op is Opcode.JSR


def reads_src1(op):
    """True if the opcode reads its src1 operand."""
    if op in (Opcode.LDI, Opcode.BR, Opcode.JSR, Opcode.NOP, Opcode.HALT):
        return False
    return True


def reads_src2(op):
    """True if the opcode reads its src2 operand."""
    cls = _OP_CLASS[op]
    if cls in (OpClass.IALU, OpClass.IMUL, OpClass.FP):
        return op not in (Opcode.LDA, Opcode.LDI, Opcode.SLL, Opcode.SRL)
    return op is Opcode.ST  # the value being stored
