"""Program container: an instruction image plus initial data memory.

Mutation contract: a :class:`Program` is *mostly* immutable — transforms
(`repro.analysis.optimize`) build new Program objects — but a handful of
in-place mutators exist for live patching (PGO applying a layout to a
program a long-running session is already executing).  Every mutator is
decorated with :func:`_mutator`, which (a) registers its name in
``Program.MUTATING_APIS`` and (b) bumps ``Program.version`` after the
call.  Consumers that cache decoded forms of the instruction image (the
decoded-block trace cache in ``repro.cpu.tracecache``) revalidate
against ``version`` and drop their cache on any change.  Mutating the
instruction image *without* going through a registered mutator (e.g.
assigning to ``program.instructions[i]`` directly) is a contract
violation; ``tests/cpu/test_tracecache_invalidation.py`` gates, via AST
introspection, that every method writing ``self`` state is registered.
"""

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ProgramError
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction

# Names of every registered in-place mutator (populated by @_mutator).
_MUTATING_APIS = []


def _mutator(fn):
    """Register *fn* as a mutating Program API; bump ``version`` after it.

    The bump happens in a ``finally`` so a mutator that raises halfway
    still invalidates downstream caches — over-invalidation is safe,
    a stale decoded block is not.
    """
    _MUTATING_APIS.append(fn.__name__)

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        try:
            return fn(self, *args, **kwargs)
        finally:
            self.version += 1

    return wrapper


@dataclass
class Program:
    """A linked program ready for simulation.

    Attributes:
        instructions: instruction image; the instruction at index ``i`` has
            PC ``4 * i``.
        labels: label name -> byte address.
        initial_memory: word-aligned byte address -> 64-bit value, used to
            seed data memory before execution.
        entry: byte address of the first instruction to execute.
        name: optional human-readable name (used in reports).
    """

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    initial_memory: Dict[int, int] = field(default_factory=dict)
    entry: int = 0
    name: str = "anonymous"
    functions: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # Monotonic mutation counter; bumped by every @_mutator call.  Not
    # part of equality/repr: two programs with the same image are the
    # same program regardless of their patch history.
    version: int = field(default=0, init=False, repr=False, compare=False)

    # Public registry of every in-place mutating API (see module
    # docstring); the trace-cache gating test enumerates this.
    MUTATING_APIS = _MUTATING_APIS

    def __post_init__(self):
        if not self.instructions:
            raise ProgramError("program has no instructions")
        if self.entry % INSTRUCTION_BYTES != 0:
            raise ProgramError("entry point %#x is not instruction-aligned"
                               % self.entry)
        if not self.contains_pc(self.entry):
            raise ProgramError("entry point %#x is outside the program"
                               % self.entry)

    def __len__(self):
        return len(self.instructions)

    @property
    def pc_limit(self):
        """One past the last valid PC (byte address)."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def contains_pc(self, pc):
        """True if *pc* addresses an instruction in this program."""
        return 0 <= pc < self.pc_limit and pc % INSTRUCTION_BYTES == 0

    def fetch(self, pc):
        """Return the instruction at byte address *pc*.

        Raises ProgramError for out-of-range or misaligned addresses; the
        cores use :meth:`fetch_or_nop` on speculative (possibly garbage)
        paths instead.
        """
        if not self.contains_pc(pc):
            raise ProgramError("PC %#x is not a valid instruction address" % pc)
        return self.instructions[pc // INSTRUCTION_BYTES]

    def fetch_or_none(self, pc):
        """Return the instruction at *pc*, or None if *pc* is invalid.

        Wrong-path fetches may chase garbage indirect-jump targets; real
        hardware would take an access fault, which (like any other abort)
        simply kills the speculative instructions.  Returning None lets the
        fetcher model that without raising.
        """
        if not self.contains_pc(pc):
            return None
        return self.instructions[pc // INSTRUCTION_BYTES]

    def function_of_pc(self, pc):
        """Return the name of the function containing *pc*, or None.

        Function extents are recorded by the program builder; workloads in
        this package always declare them, which is what makes the
        interprocedural path analysis (Figure 6, right panel) possible
        without binary-level symbol recovery.
        """
        for name, (start, end) in self.functions.items():
            if start <= pc < end:
                return name
        return None

    def function_entry(self, pc):
        """Return the entry PC of the function containing *pc*, or None."""
        for start, end in self.functions.values():
            if start <= pc < end:
                return start
        return None

    def pc_of_label(self, label):
        """Resolve *label* to its byte address."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError("unknown label %r" % (label,)) from None

    def label_of_pc(self, pc):
        """Return the (first) label at *pc*, or None."""
        for name, addr in self.labels.items():
            if addr == pc:
                return name
        return None

    def listing(self) -> List[Tuple[int, str]]:
        """Return [(pc, disassembly), ...] for the whole program."""
        rows = []
        for index, inst in enumerate(self.instructions):
            rows.append((index * INSTRUCTION_BYTES, inst.disassemble()))
        return rows

    # ------------------------------------------------------------------
    # In-place mutation (see module docstring for the cache contract).

    @_mutator
    def note_mutation(self):
        """Explicitly invalidate cached decoded state.

        The escape hatch for callers that mutated program state outside
        the registered APIs (tests, REPL surgery): calling this bumps
        ``version`` so every decoded-block cache drops its blocks.
        """

    @_mutator
    def patch(self, pc, instruction):
        """Replace the instruction at byte address *pc* in place."""
        if not self.contains_pc(pc):
            raise ProgramError("patch at invalid PC %#x" % pc)
        if not isinstance(instruction, Instruction):
            raise ProgramError("patch needs an Instruction, got %r"
                               % (instruction,))
        self.instructions[pc // INSTRUCTION_BYTES] = instruction

    @_mutator
    def replace_instructions(self, instructions):
        """Swap in a whole new instruction image in place.

        The live-patch variant of building a new Program: a PGO pass can
        apply a transformed image to a program object other components
        (interpreter, caches, service sessions) already hold references
        to.  The entry point must remain valid in the new image.
        """
        instructions = list(instructions)
        if not instructions:
            raise ProgramError("program has no instructions")
        limit = len(instructions) * INSTRUCTION_BYTES
        if not 0 <= self.entry < limit:
            raise ProgramError("entry point %#x is outside the new image"
                               % self.entry)
        self.instructions[:] = instructions

    @_mutator
    def add_label(self, name, pc):
        """Attach label *name* to byte address *pc* in place."""
        if not self.contains_pc(pc):
            raise ProgramError("label %r at invalid PC %#x" % (name, pc))
        self.labels[name] = pc

    def dump(self):
        """Return a printable listing with labels, for debugging."""
        by_pc = {}
        for name, addr in self.labels.items():
            by_pc.setdefault(addr, []).append(name)
        lines = []
        for pc, text in self.listing():
            for name in by_pc.get(pc, []):
                lines.append("%s:" % name)
            lines.append("  %#06x  %s" % (pc, text))
        return "\n".join(lines)
