"""Pure functional semantics shared by the interpreter and the timing cores.

Keeping the value semantics in pure functions means the out-of-order core's
execute stage and the in-order reference interpreter cannot disagree: both
call :func:`alu_result`, :func:`branch_taken` and :func:`effective_address`.
"""

from repro.errors import SimulationError
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode
from repro.utils.bitops import to_signed, to_unsigned

WORD_BYTES = 8


def alu_result(op, a, b, imm):
    """Compute the destination value of a non-memory, non-control opcode.

    *a* and *b* are the (unsigned-represented) source-register values; the
    result is returned in unsigned 64-bit representation.
    """
    if op is Opcode.ADD:
        return to_unsigned(a + b)
    if op is Opcode.SUB:
        return to_unsigned(a - b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SLL:
        return to_unsigned(a << (imm & 63))
    if op is Opcode.SRL:
        return a >> (imm & 63)
    if op is Opcode.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Opcode.CMPEQ:
        return 1 if a == b else 0
    if op is Opcode.CMPLE:
        return 1 if to_signed(a) <= to_signed(b) else 0
    if op is Opcode.LDA:
        return to_unsigned(a + imm)
    if op is Opcode.LDI:
        return to_unsigned(imm)
    if op is Opcode.MUL:
        return to_unsigned(to_signed(a) * to_signed(b))
    # The FP pipe uses integer semantics (see opcodes.py); the experiments
    # only depend on latency and scheduling class, never on FP values.
    if op is Opcode.FADD:
        return to_unsigned(a + b)
    if op is Opcode.FSUB:
        return to_unsigned(a - b)
    if op is Opcode.FMUL:
        return to_unsigned(to_signed(a) * to_signed(b))
    if op is Opcode.FDIV:
        divisor = to_signed(b)
        if divisor == 0:
            return 0  # hardware would trap; keep wrong-path execution benign
        return to_unsigned(to_signed(a) // divisor)
    raise SimulationError("alu_result called with non-ALU opcode %s" % op)


def branch_taken(op, a):
    """Outcome of a conditional branch given its source value *a*."""
    if op is Opcode.BEQ:
        return a == 0
    if op is Opcode.BNE:
        return a != 0
    if op is Opcode.BLT:
        return to_signed(a) < 0
    if op is Opcode.BGE:
        return to_signed(a) >= 0
    raise SimulationError("branch_taken called with non-branch opcode %s" % op)


def effective_address(inst, base_value):
    """Word-aligned effective address of a load/store."""
    return to_unsigned(base_value + inst.imm) & ~(WORD_BYTES - 1)


def control_outcome(inst, pc, src1_value):
    """Resolve a control-flow instruction.

    Returns ``(taken, next_pc)`` where *next_pc* is the architecturally
    correct successor PC.  Non-control instructions fall through.
    """
    fall_through = pc + INSTRUCTION_BYTES
    op = inst.op
    if op is Opcode.BR or op is Opcode.JSR:
        return True, inst.target
    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        if branch_taken(op, src1_value):
            return True, inst.target
        return False, fall_through
    if op in (Opcode.JMP, Opcode.RET):
        return True, to_unsigned(src1_value) & ~(INSTRUCTION_BYTES - 1)
    return False, fall_through
