"""Assembler-style program builder.

``ProgramBuilder`` offers one method per opcode plus labels and data
allocation, and resolves labels to byte addresses at :meth:`build` time::

    b = ProgramBuilder(name="count")
    counter = b.alloc("counter", 1)
    b.ldi(1, 100)               # r1 = 100
    b.label("loop")
    b.lda(1, 1, -1)             # r1 -= 1
    b.bne(1, "loop")
    b.halt()
    program = b.build()

Branch/call targets may be given as label strings or absolute byte
addresses.  Data allocations live in a region starting at DATA_BASE and the
returned addresses can be baked into immediates or loaded with
:meth:`li_addr`.
"""

from repro.errors import ProgramError
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, RA_REG
from repro.utils.bitops import to_unsigned

DATA_BASE = 0x100000  # data segment base (byte address), far above any PC
WORD_BYTES = 8


def _check_reg(value, what):
    if not isinstance(value, int) or not 0 <= value < NUM_REGS:
        raise ProgramError("%s must be a register index 0..%d, got %r"
                           % (what, NUM_REGS - 1, value))
    return value


class _PendingInstruction:
    """An instruction whose target label is not yet resolved."""

    def __init__(self, op, dest=None, src1=None, src2=None, imm=0,
                 target=None):
        self.op = op
        self.dest = dest
        self.src1 = src1
        self.src2 = src2
        self.imm = imm
        self.target = target  # label str, absolute int, or None

    def link(self, labels, pc):
        target = self.target
        if isinstance(target, str):
            if target not in labels:
                raise ProgramError(
                    "instruction at %#x references unknown label %r"
                    % (pc, target))
            target = labels[target]
        return Instruction(op=self.op, dest=self.dest, src1=self.src1,
                           src2=self.src2, imm=self.imm, target=target)


class ProgramBuilder:
    """Incrementally assemble a :class:`~repro.isa.program.Program`."""

    def __init__(self, name="anonymous"):
        self.name = name
        self._pending = []
        self._labels = {}
        self._memory = {}
        self._data_cursor = DATA_BASE
        self._allocations = {}
        self._functions = {}
        self._open_function = None
        self._pending_tables = []  # (base_addr, [label, ...])

    # ------------------------------------------------------------------
    # Layout.

    @property
    def here(self):
        """Byte address of the next instruction to be emitted."""
        return len(self._pending) * INSTRUCTION_BYTES

    def label(self, name):
        """Define *name* at the current position."""
        if name in self._labels:
            raise ProgramError("duplicate label %r" % (name,))
        self._labels[name] = self.here
        return self

    def begin_function(self, name):
        """Mark the start of function *name* (also defines a label).

        Function extents feed the CFG's interprocedural predecessor edges
        (call sites and callee returns) used by the Figure 6 analysis.
        """
        if self._open_function is not None:
            raise ProgramError(
                "begin_function(%r) while %r is still open"
                % (name, self._open_function))
        if name in self._functions:
            raise ProgramError("duplicate function %r" % (name,))
        self._open_function = (name, self.here)
        return self.label(name)

    def end_function(self):
        """Close the currently open function."""
        if self._open_function is None:
            raise ProgramError("end_function() without begin_function()")
        name, start = self._open_function
        if self.here == start:
            raise ProgramError("function %r is empty" % (name,))
        self._functions[name] = (start, self.here)
        self._open_function = None
        return self

    def alloc(self, name, words, init=None, at=None):
        """Reserve *words* 64-bit words of data memory; return the base address.

        *init* optionally provides initial values (shorter lists are
        zero-padded).  *at* pins the allocation to an explicit word-aligned
        byte address (used by the assembler's round-trip); by default
        allocations pack sequentially from DATA_BASE.
        """
        if words < 1:
            raise ProgramError("allocation %r must have >= 1 word" % (name,))
        if name in self._allocations:
            raise ProgramError("duplicate allocation %r" % (name,))
        if at is not None:
            if at % WORD_BYTES:
                raise ProgramError("allocation %r address %#x not "
                                   "word-aligned" % (name, at))
            base = at
            self._data_cursor = max(self._data_cursor,
                                    at + words * WORD_BYTES)
        else:
            base = self._data_cursor
        values = list(init or [])
        if len(values) > words:
            raise ProgramError(
                "allocation %r: %d initial values exceed %d words"
                % (name, len(values), words))
        for offset in range(words):
            value = values[offset] if offset < len(values) else 0
            self._memory[base + offset * WORD_BYTES] = to_unsigned(value)
        self._data_cursor = max(self._data_cursor,
                                base + words * WORD_BYTES)
        self._allocations[name] = base
        return base

    def jump_table(self, name, labels):
        """Allocate a table of code addresses (for JMP-based switches).

        The labels are resolved at :meth:`build` time, so the table may
        reference labels defined later.  Returns the table base address.
        """
        base = self.alloc(name, len(labels))
        self._pending_tables.append((base, list(labels)))
        return base

    def address_of(self, name):
        """Base address of a previous :meth:`alloc`."""
        try:
            return self._allocations[name]
        except KeyError:
            raise ProgramError("unknown allocation %r" % (name,)) from None

    # ------------------------------------------------------------------
    # Emission primitives.

    def emit(self, op, dest=None, src1=None, src2=None, imm=0, target=None):
        """Append a raw instruction (used by the per-opcode helpers)."""
        for value, what in ((dest, "dest"), (src1, "src1"), (src2, "src2")):
            if value is not None:
                _check_reg(value, what)
        self._pending.append(_PendingInstruction(
            op, dest=dest, src1=src1, src2=src2, imm=imm, target=target))
        return self

    # Integer ALU ------------------------------------------------------

    def add(self, dest, src1, src2):
        return self.emit(Opcode.ADD, dest=dest, src1=src1, src2=src2)

    def sub(self, dest, src1, src2):
        return self.emit(Opcode.SUB, dest=dest, src1=src1, src2=src2)

    def and_(self, dest, src1, src2):
        return self.emit(Opcode.AND, dest=dest, src1=src1, src2=src2)

    def or_(self, dest, src1, src2):
        return self.emit(Opcode.OR, dest=dest, src1=src1, src2=src2)

    def xor(self, dest, src1, src2):
        return self.emit(Opcode.XOR, dest=dest, src1=src1, src2=src2)

    def sll(self, dest, src1, amount):
        return self.emit(Opcode.SLL, dest=dest, src1=src1, imm=amount)

    def srl(self, dest, src1, amount):
        return self.emit(Opcode.SRL, dest=dest, src1=src1, imm=amount)

    def cmplt(self, dest, src1, src2):
        return self.emit(Opcode.CMPLT, dest=dest, src1=src1, src2=src2)

    def cmpeq(self, dest, src1, src2):
        return self.emit(Opcode.CMPEQ, dest=dest, src1=src1, src2=src2)

    def cmple(self, dest, src1, src2):
        return self.emit(Opcode.CMPLE, dest=dest, src1=src1, src2=src2)

    def lda(self, dest, src1, imm):
        """dest = src1 + imm."""
        return self.emit(Opcode.LDA, dest=dest, src1=src1, imm=imm)

    def ldi(self, dest, imm):
        """dest = imm."""
        return self.emit(Opcode.LDI, dest=dest, imm=imm)

    def li_addr(self, dest, allocation):
        """dest = address of a named allocation."""
        return self.ldi(dest, self.address_of(allocation))

    def mul(self, dest, src1, src2):
        return self.emit(Opcode.MUL, dest=dest, src1=src1, src2=src2)

    # FP pipe (integer semantics, FP scheduling class) -------------------

    def fadd(self, dest, src1, src2):
        return self.emit(Opcode.FADD, dest=dest, src1=src1, src2=src2)

    def fsub(self, dest, src1, src2):
        return self.emit(Opcode.FSUB, dest=dest, src1=src1, src2=src2)

    def fmul(self, dest, src1, src2):
        return self.emit(Opcode.FMUL, dest=dest, src1=src1, src2=src2)

    def fdiv(self, dest, src1, src2):
        return self.emit(Opcode.FDIV, dest=dest, src1=src1, src2=src2)

    # Memory -------------------------------------------------------------

    def ld(self, dest, base, imm=0):
        """dest = mem[base + imm]."""
        return self.emit(Opcode.LD, dest=dest, src1=base, imm=imm)

    def st(self, value, base, imm=0):
        """mem[base + imm] = value  (value and base are register indices)."""
        return self.emit(Opcode.ST, src1=base, src2=value, imm=imm)

    def prefetch(self, base, imm=0):
        """Hint: warm the D-cache line at mem[base + imm]."""
        return self.emit(Opcode.PREFETCH, src1=base, imm=imm)

    # Control flow ---------------------------------------------------------

    def br(self, target):
        return self.emit(Opcode.BR, target=target)

    def beq(self, src1, target):
        return self.emit(Opcode.BEQ, src1=src1, target=target)

    def bne(self, src1, target):
        return self.emit(Opcode.BNE, src1=src1, target=target)

    def blt(self, src1, target):
        return self.emit(Opcode.BLT, src1=src1, target=target)

    def bge(self, src1, target):
        return self.emit(Opcode.BGE, src1=src1, target=target)

    def jmp(self, src1):
        return self.emit(Opcode.JMP, src1=src1)

    def jsr(self, target, ra=RA_REG):
        """Call *target*, saving the return address in *ra* (default r26)."""
        return self.emit(Opcode.JSR, dest=ra, target=target)

    def ret(self, ra=RA_REG):
        return self.emit(Opcode.RET, src1=ra)

    # Misc ---------------------------------------------------------------

    def nop(self, count=1):
        for _ in range(count):
            self.emit(Opcode.NOP)
        return self

    def halt(self):
        return self.emit(Opcode.HALT)

    # ------------------------------------------------------------------

    def build(self, entry=0):
        """Link labels and return the finished :class:`Program`.

        *entry* may be a label name or a byte address.
        """
        if self._open_function is not None:
            raise ProgramError("function %r was never closed"
                               % (self._open_function[0],))
        if isinstance(entry, str):
            if entry not in self._labels:
                raise ProgramError("unknown entry label %r" % (entry,))
            entry = self._labels[entry]
        for base, labels in self._pending_tables:
            for slot, label in enumerate(labels):
                if label not in self._labels:
                    raise ProgramError("jump table references unknown "
                                       "label %r" % (label,))
                self._memory[base + slot * WORD_BYTES] = self._labels[label]
        instructions = []
        for index, pending in enumerate(self._pending):
            pc = index * INSTRUCTION_BYTES
            instructions.append(pending.link(self._labels, pc))
        return Program(instructions=instructions, labels=dict(self._labels),
                       initial_memory=dict(self._memory), entry=entry,
                       name=self.name, functions=dict(self._functions))
