"""Reference functional interpreter.

Executes a program architecturally (no timing) and yields the retired
instruction stream.  The timing cores are validated against this
interpreter: any divergence in register/memory state or control flow is a
simulator bug.  The trace it produces is also the ground truth for the
statistics experiments (Figure 3) and the input to the path-profiling
analysis (Figure 6).
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.isa.instruction import Instruction
from repro.isa.state import ArchState


@dataclass
class TraceEntry:
    """One retired instruction in a functional trace."""

    __slots__ = ("seq", "pc", "inst", "taken", "next_pc", "eff_addr")

    seq: int
    pc: int
    inst: Instruction
    taken: Optional[bool]  # None for non-control-flow instructions
    next_pc: int
    eff_addr: Optional[int]  # None for non-memory instructions


class Interpreter:
    """Architectural executor for one program."""

    def __init__(self, program, state=None):
        """Execute *program*, optionally resuming from an existing *state*.

        Passing *state* is the two-speed hand-off path: the detailed
        window core returns the architectural state it retired up to, and
        the interpreter continues from that exact point (same register
        file, same memory object, same PC).
        """
        self.program = program
        self.state = ArchState(program) if state is None else state
        self.retired = 0

    def step(self):
        """Execute one instruction; return its TraceEntry (or None if halted)."""
        state = self.state
        if state.halted:
            return None
        pc = state.pc
        inst = self.program.fetch(pc)
        taken, next_pc, eff_addr = inst.exec_fn(state, inst, pc, self.program)
        entry = TraceEntry(seq=self.retired, pc=pc, inst=inst, taken=taken,
                           next_pc=next_pc, eff_addr=eff_addr)
        self.retired += 1
        state.pc = next_pc
        return entry

    def run(self, max_instructions=None):
        """Yield TraceEntry records until HALT or *max_instructions*."""
        executed = 0
        while not self.state.halted:
            if max_instructions is not None and executed >= max_instructions:
                return
            entry = self.step()
            if entry is None:
                return
            executed += 1
            yield entry

    def run_to_halt(self, max_instructions=10_000_000):
        """Execute until HALT; return the number of retired instructions.

        The *max_instructions* guard turns accidental infinite loops in a
        workload into a loud failure instead of a hang.
        """
        executed = 0
        while not self.state.halted:
            if executed >= max_instructions:
                raise SimulationError(
                    "program %r did not halt within %d instructions"
                    % (self.program.name, max_instructions))
            self.step()
            executed += 1
        return executed


def functional_trace(program, max_instructions=None):
    """Convenience: run *program* and return the trace as a list."""
    return list(Interpreter(program).run(max_instructions=max_instructions))
