"""Reference functional interpreter.

Executes a program architecturally (no timing) and yields the retired
instruction stream.  The timing cores are validated against this
interpreter: any divergence in register/memory state or control flow is a
simulator bug.  The trace it produces is also the ground truth for the
statistics experiments (Figure 3) and the input to the path-profiling
analysis (Figure 6).
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.isa import semantics
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.state import ArchState


@dataclass
class TraceEntry:
    """One retired instruction in a functional trace."""

    __slots__ = ("seq", "pc", "inst", "taken", "next_pc", "eff_addr")

    seq: int
    pc: int
    inst: Instruction
    taken: Optional[bool]  # None for non-control-flow instructions
    next_pc: int
    eff_addr: Optional[int]  # None for non-memory instructions


class Interpreter:
    """Architectural executor for one program."""

    def __init__(self, program):
        self.program = program
        self.state = ArchState(program)
        self.retired = 0

    def step(self):
        """Execute one instruction; return its TraceEntry (or None if halted)."""
        state = self.state
        if state.halted:
            return None
        pc = state.pc
        inst = self.program.fetch(pc)
        op = inst.op
        taken = None
        eff_addr = None
        next_pc = pc + INSTRUCTION_BYTES

        if op is Opcode.HALT:
            state.halted = True
        elif op is Opcode.NOP:
            pass
        elif inst.is_control_flow:
            src1 = state.regs.read(inst.src1) if inst.src1 is not None else 0
            taken, next_pc = semantics.control_outcome(inst, pc, src1)
            if op is Opcode.JSR:
                state.regs.write(inst.dest, pc + INSTRUCTION_BYTES)
            if not self.program.contains_pc(next_pc):
                raise SimulationError(
                    "control transfer from %#x to invalid PC %#x" % (pc, next_pc))
        elif op is Opcode.LD:
            base = state.regs.read(inst.src1)
            eff_addr = semantics.effective_address(inst, base)
            state.regs.write(inst.dest, state.memory.read(eff_addr))
        elif op is Opcode.ST:
            base = state.regs.read(inst.src1)
            eff_addr = semantics.effective_address(inst, base)
            state.memory.write(eff_addr, state.regs.read(inst.src2))
        elif op is Opcode.PREFETCH:
            base = state.regs.read(inst.src1)
            eff_addr = semantics.effective_address(inst, base)
            # Architecturally a no-op; the address is recorded so timing
            # models (and traces) can warm their caches.
        else:
            a = state.regs.read(inst.src1) if inst.src1 is not None else 0
            b = state.regs.read(inst.src2) if inst.src2 is not None else 0
            state.regs.write(inst.dest, semantics.alu_result(op, a, b, inst.imm))

        entry = TraceEntry(seq=self.retired, pc=pc, inst=inst, taken=taken,
                           next_pc=next_pc, eff_addr=eff_addr)
        self.retired += 1
        state.pc = next_pc
        return entry

    def run(self, max_instructions=None):
        """Yield TraceEntry records until HALT or *max_instructions*."""
        executed = 0
        while not self.state.halted:
            if max_instructions is not None and executed >= max_instructions:
                return
            entry = self.step()
            if entry is None:
                return
            executed += 1
            yield entry

    def run_to_halt(self, max_instructions=10_000_000):
        """Execute until HALT; return the number of retired instructions.

        The *max_instructions* guard turns accidental infinite loops in a
        workload into a loud failure instead of a hang.
        """
        executed = 0
        while not self.state.halted:
            if executed >= max_instructions:
                raise SimulationError(
                    "program %r did not halt within %d instructions"
                    % (self.program.name, max_instructions))
            self.step()
            executed += 1
        return executed


def functional_trace(program, max_instructions=None):
    """Convenience: run *program* and return the trace as a list."""
    return list(Interpreter(program).run(max_instructions=max_instructions))
