"""Architectural state: register file and data memory."""

from dataclasses import dataclass
from typing import Dict, List

from repro.isa.registers import NUM_REGS, ZERO_REG
from repro.utils.bitops import to_unsigned


class RegisterFile:
    """32 general registers with a hardwired zero register (R31)."""

    def __init__(self):
        self._values = [0] * NUM_REGS

    def read(self, index):
        if index == ZERO_REG:
            return 0
        return self._values[index]

    def write(self, index, value):
        if index == ZERO_REG:
            return  # writes to the zero register are architectural no-ops
        self._values[index] = to_unsigned(value)

    def snapshot(self):
        """Copy of all register values (index -> value)."""
        values = list(self._values)
        values[ZERO_REG] = 0
        return values

    def load(self, values):
        """Overwrite every register from a snapshot list (R31 stays 0)."""
        self._values = list(values)
        self._values[ZERO_REG] = 0


class Memory:
    """Sparse 64-bit word memory keyed by word-aligned byte address.

    Reads of untouched locations return 0, which keeps wrong-path
    (speculative) loads benign — real hardware would either return stale
    data or fault, and either way the value is squashed.
    """

    WORD_BYTES = 8

    def __init__(self, initial=None):
        self._words = dict(initial or {})

    @staticmethod
    def _align(addr):
        return addr & ~(Memory.WORD_BYTES - 1)

    def read(self, addr):
        return self._words.get(self._align(addr), 0)

    def write(self, addr, value):
        self._words[self._align(addr)] = to_unsigned(value)

    def snapshot(self):
        return dict(self._words)

    def load(self, words):
        """Overwrite the full contents from a snapshot dict."""
        self._words = dict(words)

    def __len__(self):
        return len(self._words)


@dataclass
class ArchSnapshot:
    """A point-in-time copy of everything the ISA defines.

    This is the two-speed hand-off currency: the interpreter and the
    detailed cores exchange architectural state through snapshots, so a
    hand-off is a plain data copy with no aliasing between the engines.
    """

    regs: List[int]
    memory: Dict[int, int]
    pc: int
    halted: bool


class ArchState:
    """Register file + memory + PC: everything the ISA defines."""

    def __init__(self, program):
        self.regs = RegisterFile()
        self.memory = Memory(program.initial_memory)
        self.pc = program.entry
        self.halted = False

    def snapshot(self):
        """Capture the full architectural state as an :class:`ArchSnapshot`."""
        return ArchSnapshot(regs=self.regs.snapshot(),
                            memory=self.memory.snapshot(),
                            pc=self.pc, halted=self.halted)

    def restore(self, snap):
        """Overwrite this state from an :class:`ArchSnapshot`."""
        self.regs.load(snap.regs)
        self.memory.load(snap.memory)
        self.pc = snap.pc
        self.halted = snap.halted
