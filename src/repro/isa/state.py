"""Architectural state: register file and data memory."""

from repro.isa.registers import NUM_REGS, ZERO_REG
from repro.utils.bitops import to_unsigned


class RegisterFile:
    """32 general registers with a hardwired zero register (R31)."""

    def __init__(self):
        self._values = [0] * NUM_REGS

    def read(self, index):
        if index == ZERO_REG:
            return 0
        return self._values[index]

    def write(self, index, value):
        if index == ZERO_REG:
            return  # writes to the zero register are architectural no-ops
        self._values[index] = to_unsigned(value)

    def snapshot(self):
        """Copy of all register values (index -> value)."""
        values = list(self._values)
        values[ZERO_REG] = 0
        return values


class Memory:
    """Sparse 64-bit word memory keyed by word-aligned byte address.

    Reads of untouched locations return 0, which keeps wrong-path
    (speculative) loads benign — real hardware would either return stale
    data or fault, and either way the value is squashed.
    """

    WORD_BYTES = 8

    def __init__(self, initial=None):
        self._words = dict(initial or {})

    @staticmethod
    def _align(addr):
        return addr & ~(Memory.WORD_BYTES - 1)

    def read(self, addr):
        return self._words.get(self._align(addr), 0)

    def write(self, addr, value):
        self._words[self._align(addr)] = to_unsigned(value)

    def snapshot(self):
        return dict(self._words)

    def __len__(self):
        return len(self._words)


class ArchState:
    """Register file + memory + PC: everything the ISA defines."""

    def __init__(self, program):
        self.regs = RegisterFile()
        self.memory = Memory(program.initial_memory)
        self.pc = program.entry
        self.halted = False
