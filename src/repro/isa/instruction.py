"""Static instruction representation.

An :class:`Instruction` is one slot in a :class:`~repro.isa.program.Program`.
PCs are byte addresses; every instruction is 4 bytes, so the instruction at
index *i* lives at PC ``4 * i``.  Direct control-flow targets are stored as
resolved byte addresses (the builder resolves labels at build time).

All classification (functional-unit class, operand sets, control-flow
kind) is precomputed at construction: the timing cores consult these
attributes millions of times per simulated second, so they are plain
attributes rather than properties.
"""

from dataclasses import dataclass
from typing import Optional

from repro.isa import opcodes
from repro.isa.opcodes import Opcode
from repro.isa.registers import ZERO_REG, reg_name

INSTRUCTION_BYTES = 4

# Per-opcode architectural step handlers, bound lazily: stepfns imports
# semantics, which imports this module for INSTRUCTION_BYTES, so the
# table cannot be imported at module load.  The first Instruction ever
# constructed resolves it once.
_STEP_HANDLERS = None


def _step_handlers():
    global _STEP_HANDLERS
    if _STEP_HANDLERS is None:
        from repro.isa.stepfns import HANDLERS

        _STEP_HANDLERS = HANDLERS
    return _STEP_HANDLERS


@dataclass(frozen=True)
class Instruction:
    """A decoded static instruction.

    Attributes:
        op: the opcode.
        dest: destination register index, or None.
        src1: first source register index, or None.
        src2: second source register index, or None.
        imm: immediate operand (shift amounts, address displacements, LDI).
        target: resolved byte address for direct branches/calls, or None.

    Derived (precomputed) attributes:
        op_class, exec_latency, is_branch, is_conditional,
        is_control_flow, is_load, is_store, is_prefetch, is_memory,
        is_indirect (JMP/RET: indirect-target control flow),
        fu_pool (functional-unit pool name the timing cores schedule on),
        bypasses_iq (NOP/HALT: no operands, never enters the issue queue),
        sources (tuple of read registers, R31 excluded),
        src1_slot / src2_slot (index of src1/src2 within ``sources``, or
        None — lets the cores read operand values without building a
        per-issue dict),
        dest_reg (destination register or None, R31 folded to None).
    """

    op: Opcode
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None

    def __post_init__(self):
        op = self.op
        set_attr = object.__setattr__
        set_attr(self, "op_class", opcodes.op_class(op))
        set_attr(self, "exec_latency", opcodes.exec_latency(op))
        set_attr(self, "is_branch", op in opcodes.DIRECT_BRANCHES)
        set_attr(self, "is_conditional",
                 op in opcodes.CONDITIONAL_BRANCHES)
        set_attr(self, "is_control_flow", op in opcodes.CONTROL_FLOW)
        set_attr(self, "is_load", op is Opcode.LD)
        set_attr(self, "is_store", op is Opcode.ST)
        set_attr(self, "is_prefetch", op is Opcode.PREFETCH)
        # PREFETCH is excluded from is_memory: it is a hint with no
        # architectural effect, so it bypasses the load/store queue.
        set_attr(self, "is_memory", op in (Opcode.LD, Opcode.ST))
        set_attr(self, "is_indirect", op in opcodes.INDIRECT_JUMPS)
        set_attr(self, "fu_pool", opcodes.fu_pool(op))
        set_attr(self, "bypasses_iq", op in (Opcode.NOP, Opcode.HALT))

        sources = []
        if opcodes.reads_src1(op) and self.src1 is not None:
            if self.src1 != ZERO_REG:
                sources.append(self.src1)
        if opcodes.reads_src2(op) and self.src2 is not None:
            if self.src2 != ZERO_REG:
                sources.append(self.src2)
        set_attr(self, "sources", tuple(sources))
        set_attr(self, "src1_slot",
                 sources.index(self.src1) if self.src1 in sources else None)
        set_attr(self, "src2_slot",
                 sources.index(self.src2) if self.src2 in sources else None)

        dest_reg = None
        if opcodes.writes_register(op):
            if self.dest is not None and self.dest != ZERO_REG:
                dest_reg = self.dest
        set_attr(self, "dest_reg", dest_reg)

        # Architectural step handler (repro.isa.stepfns): the
        # interpreter's per-instruction dispatch is this one attribute
        # lookup instead of an opcode ladder.
        set_attr(self, "exec_fn", _step_handlers()[op])

    def source_registers(self):
        """Registers this instruction reads (R31 excluded: it is constant)."""
        return list(self.sources)

    def destination_register(self):
        """The register this instruction writes, or None (R31 discarded)."""
        return self.dest_reg

    def disassemble(self):
        """Human-readable assembly string."""
        op = self.op
        parts = [op.value]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        if self.src1 is not None:
            operands.append(reg_name(self.src1))
        if self.src2 is not None:
            operands.append(reg_name(self.src2))
        if op in (Opcode.LDI, Opcode.LDA, Opcode.SLL, Opcode.SRL,
                  Opcode.LD, Opcode.ST, Opcode.PREFETCH):
            operands.append("#%d" % self.imm)
        if self.target is not None:
            operands.append("@%#x" % self.target)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)

    def __str__(self):
        return self.disassemble()
