"""Natural-loop detection over the forward CFG.

Section 3 of the paper: profiles should summarize behaviour over "an
individual program, a procedure, or a smaller unit such as a loop".
Procedures come from the builder's function extents; loops need analysis:

1. build the forward CFG at instruction granularity (successor edges of
   every direct control transfer; indirect edges from a trace when
   provided);
2. compute dominators per function (iterative data-flow, in reverse
   post-order);
3. find back edges (``t -> h`` where ``h`` dominates ``t``) and collect
   each natural loop's body by backward reachability from the tail.

Loops sharing a header are merged (standard practice), and nesting is
reported by body containment.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode


def forward_edges(program, observed_indirect=None):
    """Successor map ``pc -> [next_pc, ...]`` within each function.

    Call edges are *not* followed (a JSR's successor for loop purposes
    is its return point), matching how programmers think of loops.
    RET/HALT have no intra-function successors; JMP uses observed
    targets when given.
    """
    observed_indirect = observed_indirect or {}
    successors = {}
    for index, inst in enumerate(program.instructions):
        pc = index * INSTRUCTION_BYTES
        next_pc = pc + INSTRUCTION_BYTES
        op = inst.op
        if op in (Opcode.RET, Opcode.HALT):
            successors[pc] = []
        elif op is Opcode.BR:
            successors[pc] = [inst.target]
        elif inst.is_conditional:
            successors[pc] = [inst.target, next_pc]
        elif op is Opcode.JMP:
            successors[pc] = sorted(observed_indirect.get(pc, ()))
        else:  # sequential flow; JSR falls through to its return point
            successors[pc] = [next_pc] if program.contains_pc(next_pc) \
                else []
    return successors


def _reverse_post_order(entry, successors, extent):
    start, end = extent
    order = []
    visited = set()
    stack = [(entry, iter(successors.get(entry, ())))]
    visited.add(entry)
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if start <= child < end and child not in visited:
                visited.add(child)
                stack.append((child, iter(successors.get(child, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def dominators(entry, successors, extent):
    """Immediate-dominator-free dominator sets (iterative data-flow).

    Returns ``pc -> frozenset of dominating pcs`` for nodes reachable
    from *entry* within *extent*.
    """
    order = _reverse_post_order(entry, successors, extent)
    reachable = set(order)
    preds = {node: [] for node in order}
    start, end = extent
    for node in order:
        for succ in successors.get(node, ()):
            if succ in reachable:
                preds[succ].append(node)

    dom = {node: reachable for node in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            node_preds = [p for p in preds[node] if p in dom]
            if not node_preds:
                continue
            new = set.intersection(*(set(dom[p]) for p in node_preds))
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return {node: frozenset(d) for node, d in dom.items()}


@dataclass
class NaturalLoop:
    """One natural loop (back edges merged per header)."""

    function: str
    header: int
    back_edges: List[int] = field(default_factory=list)  # tail pcs
    body: Set[int] = field(default_factory=set)  # pcs, includes header

    @property
    def size(self):
        return len(self.body)

    def contains(self, other):
        """True if *other* nests (strictly) inside this loop."""
        return other.header != self.header and other.body <= self.body

    def __repr__(self):
        return ("NaturalLoop(%s, header=%#x, body=%d insts)"
                % (self.function, self.header, len(self.body)))


def find_loops(program, observed_indirect=None):
    """All natural loops, per function.  Returns [NaturalLoop, ...]."""
    successors = forward_edges(program, observed_indirect)
    loops = {}
    for name, (start, end) in program.functions.items():
        dom = dominators(start, successors, (start, end))
        preds = {}
        for node in dom:
            for succ in successors.get(node, ()):
                if succ in dom:
                    preds.setdefault(succ, []).append(node)
        for tail in dom:
            for head in successors.get(tail, ()):
                if head in dom and head in dom[tail]:
                    # tail -> head is a back edge: head dominates tail.
                    loop = loops.get((name, head))
                    if loop is None:
                        loop = NaturalLoop(function=name, header=head)
                        loop.body.add(head)
                        loops[(name, head)] = loop
                    loop.back_edges.append(tail)
                    # Body: backward reachability from the tail, stopping
                    # at the header.
                    work = [tail]
                    while work:
                        node = work.pop()
                        if node in loop.body:
                            continue
                        loop.body.add(node)
                        work.extend(p for p in preds.get(node, ())
                                    if p not in loop.body)
    return sorted(loops.values(), key=lambda l: (l.function, l.header))


def loop_of_pc(loops, pc):
    """The innermost loop containing *pc*, or None."""
    best = None
    for loop in loops:
        if pc in loop.body:
            if best is None or loop.size < best.size:
                best = loop
    return best
