"""Relocation-safety validation for code-moving transformations.

The optimization passes (:mod:`repro.analysis.optimize`, driven by the
:mod:`repro.pgo` pipeline) relocate code: function reordering moves whole
functions, prefetch insertion shifts everything after an insertion point.
Direct control flow survives relocation because the transformer relinks
resolved targets — but *indirect* jumps (``JMP``) take their target from
a register, and the jump tables feeding those registers live in data
memory as absolute code addresses the transformer cannot see.  Moving
code under a ``JMP`` silently corrupts control flow.

This module is the single up-front check: :func:`ensure_relocatable`
raises a typed :class:`~repro.errors.RelocationError` naming the
offending PCs *before* any relocation starts, so a caller never gets a
half-transformed program.  ``RET`` is deliberately not a hazard: return
addresses are produced at run time by the relocated ``JSR``, so they are
always consistent with the relocated image.
"""

from repro.errors import RelocationError
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode

# How many offending PCs an error message spells out before eliding.
_NAMED_PCS = 8


def indirect_jump_pcs(program):
    """PCs of all indirect jumps (``JMP``) in *program*, ascending.

    These are exactly the instructions whose targets a relocation cannot
    relink (jump tables hold absolute code addresses in data memory).
    ``JSR``/``RET`` are excluded: calls have direct, relinkable targets,
    and return addresses are produced at run time by the relocated call.
    """
    return tuple(index * INSTRUCTION_BYTES
                 for index, inst in enumerate(program.instructions)
                 if inst.op is Opcode.JMP)


def ensure_relocatable(program, operation="relocate"):
    """Raise :class:`~repro.errors.RelocationError` if code cannot move.

    *operation* names the attempted transformation in the message.  The
    raised error carries the offending PCs on ``error.pcs`` so callers
    (e.g. the PGO pass manager's applicability guards) can report them
    without re-scanning the program.
    """
    pcs = indirect_jump_pcs(program)
    if not pcs:
        return
    shown = ", ".join("%#x" % pc for pc in pcs[:_NAMED_PCS])
    if len(pcs) > _NAMED_PCS:
        shown += ", ... (%d total)" % len(pcs)
    raise RelocationError(
        "cannot %s %r: indirect jumps at %s take absolute code addresses "
        "from data memory (jump tables), which relocation cannot relink"
        % (operation, program.name, shown), pcs=pcs)
