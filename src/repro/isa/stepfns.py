"""Per-opcode architectural step handlers (the interpreter's hot path).

The reference interpreter used to classify every instruction with an
if/elif ladder over the opcode.  In two-speed execution the interpreter
fast-forwards between ProfileMe samples and becomes the dominant cost of
a run, so the classification is now done *once*, at instruction build
time: :class:`~repro.isa.instruction.Instruction` precomputes an
``exec_fn`` attribute pointing at one of the handlers below, and the
interpreter's step is a single indirect call.

Every handler has the same signature::

    exec_fn(state, inst, pc, program) -> (taken, next_pc, eff_addr)

mutating *state* (registers, memory, ``halted``) exactly as the old
ladder did — ``tests/isa/test_interpreter.py`` pins the equivalence.
The caller advances ``state.pc`` itself, which lets trace-producing and
allocation-free callers share the handlers (see
:meth:`~repro.isa.interpreter.Interpreter.step` and
:func:`repro.cpu.warm.fast_forward`).
"""

from repro.errors import SimulationError
from repro.isa import semantics
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import CONTROL_FLOW, Opcode


def _step_halt(state, inst, pc, program):
    state.halted = True
    return None, pc + INSTRUCTION_BYTES, None


def _step_nop(state, inst, pc, program):
    return None, pc + INSTRUCTION_BYTES, None


def _step_control(state, inst, pc, program):
    src1 = state.regs.read(inst.src1) if inst.src1 is not None else 0
    taken, next_pc = semantics.control_outcome(inst, pc, src1)
    if inst.op is Opcode.JSR:
        state.regs.write(inst.dest, pc + INSTRUCTION_BYTES)
    if not program.contains_pc(next_pc):
        raise SimulationError(
            "control transfer from %#x to invalid PC %#x" % (pc, next_pc))
    return taken, next_pc, None


def _step_load(state, inst, pc, program):
    base = state.regs.read(inst.src1)
    eff_addr = semantics.effective_address(inst, base)
    state.regs.write(inst.dest, state.memory.read(eff_addr))
    return None, pc + INSTRUCTION_BYTES, eff_addr


def _step_store(state, inst, pc, program):
    base = state.regs.read(inst.src1)
    eff_addr = semantics.effective_address(inst, base)
    state.memory.write(eff_addr, state.regs.read(inst.src2))
    return None, pc + INSTRUCTION_BYTES, eff_addr


def _step_prefetch(state, inst, pc, program):
    base = state.regs.read(inst.src1)
    eff_addr = semantics.effective_address(inst, base)
    # Architecturally a no-op; the address is recorded so timing
    # models (and traces) can warm their caches.
    return None, pc + INSTRUCTION_BYTES, eff_addr


def _step_alu(state, inst, pc, program):
    regs = state.regs
    a = regs.read(inst.src1) if inst.src1 is not None else 0
    b = regs.read(inst.src2) if inst.src2 is not None else 0
    regs.write(inst.dest, semantics.alu_result(inst.op, a, b, inst.imm))
    return None, pc + INSTRUCTION_BYTES, None


def _handler_for(op):
    if op is Opcode.HALT:
        return _step_halt
    if op is Opcode.NOP:
        return _step_nop
    if op in CONTROL_FLOW:
        return _step_control
    if op is Opcode.LD:
        return _step_load
    if op is Opcode.ST:
        return _step_store
    if op is Opcode.PREFETCH:
        return _step_prefetch
    return _step_alu


HANDLERS = {op: _handler_for(op) for op in Opcode}
