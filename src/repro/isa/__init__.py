"""A small Alpha-like RISC ISA: the programs the simulated machines run.

Public surface:

* :class:`Opcode`, :class:`OpClass` — instruction set definition.
* :class:`Instruction` — one static instruction.
* :class:`Program` — linked instruction image + initial memory.
* :class:`ProgramBuilder` — assembler-style program construction.
* :class:`Interpreter`, :func:`functional_trace` — reference semantics.
* :class:`ControlFlowGraph` — backward CFG for path profiling.
"""

from repro.isa.asm import parse_asm, program_to_asm
from repro.isa.builder import DATA_BASE, ProgramBuilder
from repro.isa.cfg import (ControlFlowGraph, edge_counts,
                           observed_indirect_targets)
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.interpreter import Interpreter, TraceEntry, functional_trace
from repro.isa.loops import NaturalLoop, find_loops, loop_of_pc
from repro.isa.opcodes import OpClass, Opcode, exec_latency, op_class
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS, RA_REG, SP_REG, ZERO_REG, reg_name

__all__ = [
    "DATA_BASE",
    "INSTRUCTION_BYTES",
    "NUM_REGS",
    "RA_REG",
    "SP_REG",
    "ZERO_REG",
    "ControlFlowGraph",
    "Instruction",
    "Interpreter",
    "NaturalLoop",
    "find_loops",
    "loop_of_pc",
    "OpClass",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "TraceEntry",
    "edge_counts",
    "exec_latency",
    "functional_trace",
    "observed_indirect_targets",
    "op_class",
    "parse_asm",
    "program_to_asm",
    "reg_name",
]
