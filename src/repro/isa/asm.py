"""Text assembly: parse and emit programs in a human-writable format.

Grammar (one statement per line; ``;`` starts a comment)::

    .entry main                  ; entry label (default: first instruction)
    .data name WORDS [= v0 v1 ...]  ; allocate data, optional init values
    .table name = lab0 lab1 ...  ; jump table of code labels
    .func name                   ; function extent start (defines label)
    .endfunc
    label:                       ; code label
    op operand, operand, ...     ; instruction

Operands: registers (``r0``..``r30``, ``zero``), immediates (``#42`` or
bare integers, negative allowed), code labels, or absolute targets
(``@0x40``).  The operand order of every opcode matches its
disassembly, so ``program_to_asm`` / ``parse_asm`` round-trip exactly.
"""

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_REGS, ZERO_REG

# Operand signature per opcode, in disassembly order.
_R3 = ("dest", "src1", "src2")
SIGNATURES = {
    Opcode.ADD: _R3, Opcode.SUB: _R3, Opcode.AND: _R3, Opcode.OR: _R3,
    Opcode.XOR: _R3, Opcode.CMPLT: _R3, Opcode.CMPEQ: _R3,
    Opcode.CMPLE: _R3, Opcode.MUL: _R3, Opcode.FADD: _R3,
    Opcode.FSUB: _R3, Opcode.FMUL: _R3, Opcode.FDIV: _R3,
    Opcode.SLL: ("dest", "src1", "imm"),
    Opcode.SRL: ("dest", "src1", "imm"),
    Opcode.LDA: ("dest", "src1", "imm"),
    Opcode.LDI: ("dest", "imm"),
    Opcode.LD: ("dest", "src1", "imm"),
    Opcode.ST: ("src1", "src2", "imm"),
    Opcode.PREFETCH: ("src1", "imm"),
    Opcode.BR: ("target",),
    Opcode.BEQ: ("src1", "target"),
    Opcode.BNE: ("src1", "target"),
    Opcode.BLT: ("src1", "target"),
    Opcode.BGE: ("src1", "target"),
    Opcode.JMP: ("src1",),
    Opcode.JSR: ("dest", "target"),
    Opcode.RET: ("src1",),
    Opcode.NOP: (),
    Opcode.HALT: (),
}

_BY_NAME = {op.value: op for op in Opcode}


def _parse_register(token, line_no):
    if token == "zero":
        return ZERO_REG
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index < NUM_REGS:
            return index
    raise ProgramError("line %d: bad register %r" % (line_no, token))


def _parse_int(token, line_no):
    try:
        return int(token.lstrip("#"), 0)
    except ValueError:
        raise ProgramError("line %d: bad immediate %r"
                           % (line_no, token)) from None


def parse_asm(text, name="asm"):
    """Assemble *text* into a :class:`~repro.isa.program.Program`."""
    builder = ProgramBuilder(name=name)
    entry = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue

        if line.startswith(".entry"):
            parts = line.split()
            if len(parts) != 2:
                raise ProgramError("line %d: .entry LABEL" % line_no)
            entry = parts[1]
            continue
        if line.startswith(".data"):
            head, _, init_text = line.partition("=")
            parts = head.split()
            at = None
            if len(parts) == 4 and parts[3].startswith("@"):
                at = _parse_int(parts[3][1:], line_no)
                parts = parts[:3]
            if len(parts) != 3:
                raise ProgramError(
                    "line %d: .data NAME WORDS [@ADDR] [= v ...]" % line_no)
            words = _parse_int(parts[2], line_no)
            init = [_parse_int(tok, line_no)
                    for tok in init_text.split()] if init_text else None
            builder.alloc(parts[1], words, init=init, at=at)
            continue
        if line.startswith(".table"):
            head, _, labels_text = line.partition("=")
            parts = head.split()
            if len(parts) != 2 or not labels_text.strip():
                raise ProgramError("line %d: .table NAME = lab0 lab1 ..."
                                   % line_no)
            builder.jump_table(parts[1], labels_text.split())
            continue
        if line.startswith(".func"):
            parts = line.split()
            if len(parts) != 2:
                raise ProgramError("line %d: .func NAME" % line_no)
            builder.begin_function(parts[1])
            continue
        if line == ".endfunc":
            builder.end_function()
            continue
        if line.startswith("."):
            raise ProgramError("line %d: unknown directive %r"
                               % (line_no, line.split()[0]))

        if line.endswith(":"):
            builder.label(line[:-1].strip())
            continue

        # Instruction.
        mnemonic, _, operand_text = line.partition(" ")
        op = _BY_NAME.get(mnemonic.strip())
        if op is None:
            raise ProgramError("line %d: unknown opcode %r"
                               % (line_no, mnemonic))
        signature = SIGNATURES[op]
        tokens = [tok.strip() for tok in operand_text.split(",")
                  if tok.strip()] if operand_text.strip() else []
        # A trailing immediate may be omitted.
        if (len(tokens) == len(signature) - 1
                and signature and signature[-1] == "imm"):
            tokens.append("#0")
        if len(tokens) != len(signature):
            raise ProgramError(
                "line %d: %s takes %d operands (%s), got %d"
                % (line_no, op.value, len(signature),
                   ", ".join(signature), len(tokens)))
        fields = {"imm": 0}
        for field_name, token in zip(signature, tokens):
            if field_name == "imm":
                fields["imm"] = _parse_int(token, line_no)
            elif field_name == "target":
                if token.startswith("@"):
                    fields["target"] = _parse_int(token[1:], line_no)
                else:
                    fields["target"] = token  # label, resolved at build
            else:
                fields[field_name] = _parse_register(token, line_no)
        builder.emit(op, dest=fields.get("dest"),
                     src1=fields.get("src1"), src2=fields.get("src2"),
                     imm=fields["imm"], target=fields.get("target"))

    return builder.build(entry=entry if entry is not None else 0)


def program_to_asm(program):
    """Emit *program* as assembly text that :func:`parse_asm` reproduces."""
    lines = ["; %s" % program.name]

    # Data: contiguous word runs of the initial memory.
    addresses = sorted(program.initial_memory)
    run_start = None
    prev = None
    runs = []
    for addr in addresses:
        if prev is not None and addr == prev + 8:
            prev = addr
            continue
        if run_start is not None:
            runs.append((run_start, prev))
        run_start = addr
        prev = addr
    if run_start is not None:
        runs.append((run_start, prev))
    for start, end in runs:
        words = (end - start) // 8 + 1
        values = [str(program.initial_memory[start + k * 8])
                  for k in range(words)]
        lines.append(".data mem_%x %d @0x%x = %s"
                     % (start, words, start, " ".join(values)))

    if program.entry != 0 or program.label_of_pc(0) is not None:
        entry_label = program.label_of_pc(program.entry)
        if entry_label is None:
            raise ProgramError("entry point has no label; cannot emit")
        lines.append(".entry %s" % entry_label)

    # Labels: declared ones plus synthesized ones for raw branch targets.
    labels_at = {}
    for label, pc in program.labels.items():
        labels_at.setdefault(pc, []).append(label)
    target_names = {}
    for inst in program.instructions:
        if inst.target is not None:
            if inst.target in labels_at:
                target_names[inst.target] = labels_at[inst.target][0]
            else:
                synthesized = "L_%x" % inst.target
                target_names[inst.target] = synthesized
                labels_at.setdefault(inst.target, []).append(synthesized)

    starts = {start: name for name, (start, _) in program.functions.items()}
    ends = {end: name for name, (_, end) in program.functions.items()}

    for index, inst in enumerate(program.instructions):
        pc = index * INSTRUCTION_BYTES
        if pc in ends:
            lines.append(".endfunc")
        if pc in starts:
            lines.append(".func %s" % starts[pc])
        for label in labels_at.get(pc, ()):
            if label not in program.functions:
                lines.append("%s:" % label)

        operands = []
        for field_name in SIGNATURES[inst.op]:
            if field_name == "imm":
                operands.append("#%d" % inst.imm)
            elif field_name == "target":
                operands.append(target_names[inst.target])
            else:
                value = getattr(inst, field_name)
                operands.append("zero" if value == ZERO_REG
                                else "r%d" % value)
        lines.append("    %s %s" % (inst.op.value, ", ".join(operands))
                     if operands else "    %s" % inst.op.value)
    if program.pc_limit in ends:
        lines.append(".endfunc")
    return "\n".join(lines) + "\n"
