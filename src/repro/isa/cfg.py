"""Static control-flow graph with the backward edges path profiling needs.

Figure 6 of the paper reconstructs execution paths by walking *backwards*
through the CFG from a sampled PC, consuming global-branch-history bits at
each conditional branch.  This module builds the predecessor structure that
walk needs:

* sequential (fall-through) predecessors,
* branch-taken predecessors (including unconditional branches and calls),
* observed indirect-jump predecessors (JMP; collected from a trace, since
  indirect targets are not static),
* interprocedural predecessors: the instruction after a call (``jsr+4``) is
  dynamically preceded by the callee's RET instructions, and a function
  entry is dynamically preceded by its call sites.

Conditional branches are the only instructions that consume history bits,
matching how global branch-history registers work on real hardware.
"""

from dataclasses import dataclass
from typing import Optional

from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode


# Edge kinds for a backward step from PC `at` to predecessor `pred`.
SEQ = "seq"  # pred falls through to `at` (includes not-taken cond branches)
TAKEN = "taken"  # pred is a direct branch/call whose target is `at`
INDIRECT = "indirect"  # pred is a JMP observed to target `at`
RETURN = "return"  # pred is a RET in the callee of the JSR at `at - 4`
CALL = "call"  # pred is a JSR whose target (function entry) is `at`


@dataclass(frozen=True)
class BackEdge:
    """One backward step: from some PC to *pred*.

    Attributes:
        pred: predecessor PC.
        kind: one of SEQ/TAKEN/INDIRECT/RETURN/CALL.
        taken_bit: the history bit consumed when *pred* is a conditional
            branch (1 for taken, 0 for fall-through), else None.
    """

    pred: int
    kind: str
    taken_bit: Optional[int]


class ControlFlowGraph:
    """Predecessor-oriented CFG over a :class:`~repro.isa.program.Program`.

    Args:
        program: the program to analyze.
        observed_indirect: optional mapping ``jmp_pc -> set of target PCs``
            collected from a trace (see :func:`observed_indirect_targets`).
            RET targets are *not* needed here: returns are resolved
            statically through function extents and call sites.
    """

    def __init__(self, program, observed_indirect=None):
        self.program = program
        self.observed_indirect = {
            pc: set(targets)
            for pc, targets in (observed_indirect or {}).items()
        }
        self._call_sites = {}  # function entry pc -> [jsr pc, ...]
        self._returns_of = {}  # function entry pc -> [ret pc, ...]
        self._preds = {}  # pc -> [BackEdge, ...] (intra + indirect edges)
        self._build()

    # ------------------------------------------------------------------

    def _build(self):
        program = self.program
        for index, inst in enumerate(program.instructions):
            pc = index * INSTRUCTION_BYTES
            next_pc = pc + INSTRUCTION_BYTES
            op = inst.op
            if op is Opcode.JSR:
                entry = inst.target
                self._call_sites.setdefault(entry, []).append(pc)
                # Dynamic flow continues at the callee, never at jsr+4.
            elif op is Opcode.BR:
                self._add_edge(inst.target, pc, TAKEN, None)
            elif inst.is_conditional:
                self._add_edge(inst.target, pc, TAKEN, 1)
                self._add_edge(next_pc, pc, SEQ, 0)
            elif op is Opcode.JMP:
                for target in sorted(self.observed_indirect.get(pc, ())):
                    self._add_edge(target, pc, INDIRECT, None)
            elif op in (Opcode.RET, Opcode.HALT):
                pass  # returns handled via function extents below
            else:
                self._add_edge(next_pc, pc, SEQ, None)

        for name, (start, end) in program.functions.items():
            rets = []
            for pc in range(start, end, INSTRUCTION_BYTES):
                if program.fetch(pc).op is Opcode.RET:
                    rets.append(pc)
            self._returns_of[start] = rets

    def _add_edge(self, at, pred, kind, taken_bit):
        self._preds.setdefault(at, []).append(
            BackEdge(pred=pred, kind=kind, taken_bit=taken_bit))

    # ------------------------------------------------------------------

    def predecessors(self, pc, interprocedural=False,
                     expected_call_site=None):
        """Backward steps from *pc*.

        In intraprocedural mode, CALL and RETURN edges are omitted: the walk
        simply ends when it would need them (the paper finishes
        intraprocedural paths at the beginning of the routine).

        In interprocedural mode:

        * if *pc* is a function entry, predecessors are its call sites
          (restricted to *expected_call_site* when the walk previously
          descended through this callee's RET);
        * if ``pc - 4`` is a JSR, predecessors are the callee's RETs (the
          dynamic instruction executed immediately before ``pc``).
        """
        edges = list(self._preds.get(pc, ()))
        program = self.program

        prev_pc = pc - INSTRUCTION_BYTES
        prev = program.fetch_or_none(prev_pc)
        if prev is not None and prev.op is Opcode.JSR:
            if interprocedural:
                for ret_pc in self._returns_of.get(prev.target, ()):
                    edges.append(BackEdge(pred=ret_pc, kind=RETURN,
                                          taken_bit=None))
            # Intraprocedural: no way backwards across a call boundary.

        if interprocedural and pc in self._call_sites:
            for jsr_pc in self._call_sites[pc]:
                if (expected_call_site is not None
                        and jsr_pc != expected_call_site):
                    continue
                edges.append(BackEdge(pred=jsr_pc, kind=CALL, taken_bit=None))
        return edges

    def call_sites_of(self, entry_pc):
        """JSR PCs that call the function entered at *entry_pc*."""
        return list(self._call_sites.get(entry_pc, ()))

    def returns_of(self, entry_pc):
        """RET PCs inside the function entered at *entry_pc*."""
        return list(self._returns_of.get(entry_pc, ()))

    def is_function_entry(self, pc):
        return pc in self._returns_of or pc in self._call_sites


def observed_indirect_targets(trace):
    """Collect ``jmp_pc -> {targets}`` from a functional trace.

    Only JMP needs observed targets; RET flow is recovered statically from
    function extents, and profiling a real binary would obtain the same
    information from the Profiled Address Register of sampled jumps (the
    paper's Profiled Address Register records "the target address of
    indirect jump instructions").
    """
    observed = {}
    for entry in trace:
        if entry.inst.op is Opcode.JMP:
            observed.setdefault(entry.pc, set()).add(entry.next_pc)
    return observed


def edge_counts(trace):
    """Count dynamic control-flow transitions ``(from_pc, to_pc) -> count``.

    This is the profile the *execution counts* reconstruction scheme uses
    to pick the most likely predecessor at CFG merge points.
    """
    counts = {}
    prev_pc = None
    for entry in trace:
        if prev_pc is not None:
            key = (prev_pc, entry.pc)
            counts[key] = counts.get(key, 0) + 1
        prev_pc = entry.pc
    return counts
