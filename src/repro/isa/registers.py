"""Architectural register file layout.

32 general-purpose 64-bit registers, Alpha-style: R31 is hardwired to zero
(writes are discarded, reads return 0).  By convention R26 holds return
addresses, R30 is the stack pointer — conventions only; nothing in the
hardware model enforces them.
"""

NUM_REGS = 32
ZERO_REG = 31
RA_REG = 26  # conventional return-address register
SP_REG = 30  # conventional stack pointer


def reg_name(index):
    """Return the assembly name of register *index* (``r0`` .. ``r31``)."""
    if not 0 <= index < NUM_REGS:
        raise ValueError("register index out of range: %r" % (index,))
    if index == ZERO_REG:
        return "zero"
    return "r%d" % index
