"""Command-line tools."""
