"""Command-line profiler: the DCPI-daemon experience in one command.

Usage::

    repro profile gcc --scale 2 --interval 100
    repro profile compress --paired --out prof.json
    repro report prof.json
    repro paths go --history 8
    repro sweep compress --intervals 25,50,100,200 --jobs 4
    repro list

(Equivalently ``python -m repro`` / ``python -m repro.tools.cli``.)

`profile` runs a suite workload (or a Table 1 stall kernel via
``kernel:<name>``) under ProfileMe on the out-of-order core and prints
the standard reports; `report` re-renders a saved profile; `paths` runs
the Figure 6 path-reconstruction analysis on a workload trace; `sweep`
fans a sampling-interval x seed grid across worker processes via the
engine's resumable sweep runner — with ``--checkpoint``/``--resume`` it
caches results content-addressed by spec hash, survives worker crashes
and timeouts, and re-simulates only what is missing.
"""

import argparse
import json
import sys

from repro.analysis.bottlenecks import instruction_metrics
from repro.analysis.cycles import (event_attribution, format_breakdown,
                                   program_breakdown)
from repro.analysis.persistence import load_database, save_database
from repro.analysis.reports import (bottleneck_report, format_table,
                                    latency_table)
from repro.engine.sweep import run_sweep
from repro.errors import ConfigError
from repro.engine.session import SessionSpec
from repro.events import Event
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import SUITE_NAMES, kernel_names, stall_kernel, \
    suite_program


def _load_workload(name, scale):
    if name.endswith(".s"):
        from repro.isa.asm import parse_asm

        with open(name) as stream:
            return parse_asm(stream.read(), name=name)
    if name.startswith("kernel:"):
        return stall_kernel(name.split(":", 1)[1], iterations=200 * scale)
    return suite_program(name, scale=scale)


def cmd_list(_args):
    print("suite workloads: " + ", ".join(SUITE_NAMES))
    print("stall kernels:   " + ", ".join("kernel:" + k
                                          for k in kernel_names()))
    return 0


def cmd_profile(args):
    program = _load_workload(args.workload, args.scale)
    profile = ProfileMeConfig(
        mean_interval=args.interval,
        paired=args.paired,
        pair_window=args.window,
        register_sets=args.register_sets,
        seed=args.seed,
    )
    run = run_profiled(program, profile=profile,
                       core_kind=args.core,
                       keep_addresses=args.keep_addresses)

    core = run.core
    print("workload %s: %d instructions retired in %d cycles "
          "(IPC %.2f), %d aborted, %d mispredicts"
          % (program.name, core.retired, core.cycle, core.ipc,
             core.aborted, core.mispredicts))
    print("samples: %d delivered via %d interrupts "
          "(%d dropped while busy)\n"
          % (run.driver.delivered, run.unit.stats.interrupts,
             run.unit.stats.dropped_busy))

    top = run.database.top_by_event(Event.RETIRED, limit=args.top)
    rows = [["%#x" % pc, program.fetch(pc).disassemble()
             if program.contains_pc(pc) else "?", count]
            for pc, count in top]
    print(format_table(["pc", "instruction", "retired samples"], rows,
                       title="Hottest instructions"))
    print()
    hot_pcs = [pc for pc, _ in top]
    print(latency_table(run.database, pcs=hot_pcs, program=program))
    print()
    totals, fractions = program_breakdown(run.database, args.interval)
    print(format_breakdown(totals, fractions,
                           event_attribution(run.database)))
    print()
    from repro.analysis.aggregate import hierarchy_report

    print(hierarchy_report(run.database, program, args.interval,
                           limit=args.top))

    if run.pair_analyzer is not None:
        print()
        metrics = instruction_metrics(run.database, args.interval / 2.0,
                                      pair_analyzer=run.pair_analyzer)
        print(bottleneck_report(metrics, run.database, program=program,
                                limit=args.top))

    if args.out:
        save_database(run.database, args.out)
        print("\nprofile written to %s" % args.out)
    return 0


def cmd_report(args):
    database = load_database(args.profile)
    print("profile: %d samples over %d static instructions\n"
          % (database.total_samples, len(database.per_pc)))
    top = database.top_by_event(Event.RETIRED, limit=args.top)
    print(latency_table(database, pcs=[pc for pc, _ in top]))
    print()
    totals, fractions = program_breakdown(database, args.interval)
    print(format_breakdown(totals, fractions, event_attribution(database)))
    return 0


def cmd_compare(args):
    """Diff two saved profiles: where did the new build get worse?"""
    before = load_database(args.before)
    after = load_database(args.after)
    scale_before = args.interval
    scale_after = args.interval

    rows = []
    for pc in sorted(set(before.per_pc) | set(after.per_pc)):
        old = before.profile(pc)
        new = after.profile(pc)
        old_cycles = 0.0
        new_cycles = 0.0
        for name in ("fetch_to_map", "map_to_data_ready",
                     "data_ready_to_issue", "issue_to_retire_ready"):
            if old is not None:
                old_cycles += old.latency(name).total * scale_before
            if new is not None:
                new_cycles += new.latency(name).total * scale_after
        delta = new_cycles - old_cycles
        if abs(delta) < args.threshold:
            continue
        rows.append((delta, pc, old_cycles, new_cycles,
                     (old.samples if old else 0),
                     (new.samples if new else 0)))
    rows.sort(key=lambda r: -r[0])
    print(format_table(
        ["pc", "est. cycles before", "after", "delta", "samples b/a"],
        [["%#x" % pc, "%.0f" % old_cycles, "%.0f" % new_cycles,
          "%+.0f" % delta, "%d/%d" % (old_n, new_n)]
         for delta, pc, old_cycles, new_cycles, old_n, new_n
         in rows[:args.top]],
        title="Largest estimated-cycle regressions (positive = worse)"))
    total_before = sum(r[2] for r in rows)
    total_after = sum(r[3] for r in rows)
    print("\nnet change over reported PCs: %+.0f estimated cycles"
          % (total_after - total_before))
    return 0


def _sweep_progress(event):
    """Default progress hook for `repro sweep`: checkpoint + retry lines."""
    metrics = event["metrics"]
    if event["kind"] == "flush":
        print("checkpoint: %d/%d done (%d ok, %d cached, %d failed, "
              "%d timeout, %d retries), %.0f cycles/s"
              % (metrics.done, metrics.total, metrics.ok, metrics.cached,
                 metrics.failed, metrics.timeouts, metrics.retries,
                 metrics.cycles_per_second))
    elif event["kind"] == "retry":
        print("retrying spec %d (attempt %d failed)"
              % (event["index"], event["attempts"]))


def cmd_sweep(args):
    """Profile one workload over an interval x seed grid, in parallel.

    With ``--checkpoint``/``--resume`` the sweep runs on the resumable
    runner: completed chunks are flushed to the directory as
    content-addressed result documents, and a re-run (or ``--resume``
    after a crash) simulates only the specs whose results are missing.
    """
    program = _load_workload(args.workload, args.scale)
    try:
        intervals = [int(s) for s in args.intervals.split(",") if s]
    except ValueError:
        raise ConfigError("--intervals must be a comma-separated list of "
                          "integers, got %r" % (args.intervals,))
    specs = [
        SessionSpec(
            program=program, core_kind=args.core,
            profile=ProfileMeConfig(mean_interval=interval,
                                    paired=args.paired,
                                    seed=args.seed + seed_index),
            keep_records=False,
            label="S=%d seed=%d" % (interval, args.seed + seed_index))
        for interval in intervals
        for seed_index in range(args.seeds)
    ]
    store = args.resume or args.checkpoint
    sweep = run_sweep(specs, workers=args.jobs, timeout=args.timeout,
                      retries=args.retries, store=store,
                      chunk_size=args.chunk_size,
                      progress=_sweep_progress)

    rows = []
    report = []
    for outcome in sweep.outcomes:
        spec = outcome.spec
        result = outcome.result
        entry = {
            "label": spec.label,
            "interval": spec.profile.mean_interval,
            "seed": spec.profile.seed,
            "status": outcome.status,
            "spec_key": outcome.key,
        }
        if result is not None:
            samples = (result.database.total_samples
                       if result.database is not None else 0)
            rows.append([spec.label, outcome.status, result.stats.cycles,
                         result.stats.retired, "%.2f" % result.stats.ipc,
                         samples,
                         "%.1f" % (1000.0 * samples
                                   / max(1, result.stats.fetched))])
            entry.update({
                "cycles": result.stats.cycles,
                "retired": result.stats.retired,
                "fetched": result.stats.fetched,
                "ipc": result.stats.ipc,
                "samples": samples,
            })
        else:
            rows.append([spec.label, outcome.status, "-", "-", "-", "-", "-"])
            entry["error"] = outcome.error
        report.append(entry)
    metrics = sweep.metrics
    print(format_table(
        ["run", "status", "cycles", "retired", "ipc", "samples",
         "samples/1k fetched"],
        rows,
        title="Sampling sweep: %s on %s (%d runs, jobs=%s)"
        % (program.name, args.core, len(specs),
           "auto" if args.jobs is None else args.jobs)))
    print("\n%d ok, %d cached, %d failed, %d timeout; %d retries; "
          "%d cycles simulated (%.0f cycles/s)"
          % (metrics.ok, metrics.cached, metrics.failed, metrics.timeouts,
             metrics.retries, metrics.simulated_cycles,
             metrics.cycles_per_second))
    if args.out:
        with open(args.out, "w") as stream:
            json.dump({"workload": program.name, "core": args.core,
                       "metrics": metrics.snapshot(),
                       "runs": report}, stream, indent=2)
        print("\nsweep results written to %s" % args.out)
    return 0 if not sweep.failures() else 1


def cmd_paths(args):
    from repro.analysis.pathprof import run_reconstruction_experiment
    from repro.isa.interpreter import functional_trace
    from repro.utils.rng import SamplingRng

    program = _load_workload(args.workload, args.scale)
    trace = functional_trace(program)
    step = max(1, (len(trace) - 400) // args.samples)
    indices = list(range(300, len(trace) - 1, step))
    lengths = sorted(set([1, 2, 4, args.history]))
    results = run_reconstruction_experiment(
        program, trace, history_lengths=lengths, sample_indices=indices,
        pair_rng=SamplingRng(args.seed),
        interprocedural=args.interprocedural)
    rows = [[bits,
             "%.2f" % results[bits]["execution_counts"],
             "%.2f" % results[bits]["history_bits"],
             "%.2f" % results[bits]["history_plus_pair"]]
            for bits in lengths]
    print(format_table(
        ["history bits", "exec counts", "history", "history+pair"], rows,
        title="Path reconstruction success (%s, %d samples)"
        % ("interprocedural" if args.interprocedural
           else "intraprocedural", len(indices))))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="ProfileMe reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads") \
        .set_defaults(func=cmd_list)

    p = sub.add_parser("profile", help="profile a workload with ProfileMe")
    p.add_argument("workload", help="suite name or kernel:<name>")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--interval", type=int, default=100,
                   help="mean sampling interval S (fetched instructions)")
    p.add_argument("--paired", action="store_true",
                   help="enable paired sampling")
    p.add_argument("--window", type=int, default=96,
                   help="paired-sampling window W")
    p.add_argument("--register-sets", type=int, default=1)
    p.add_argument("--core", choices=("ooo", "inorder"), default="ooo")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--top", type=int, default=8)
    p.add_argument("--keep-addresses", type=int, default=0)
    p.add_argument("--out", help="write the profile database as JSON")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="render a saved profile")
    p.add_argument("profile", help="path to a saved profile JSON")
    p.add_argument("--interval", type=int, default=100,
                   help="sampling interval the profile was taken at")
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("compare",
                       help="diff two saved profiles (regressions)")
    p.add_argument("before", help="baseline profile JSON")
    p.add_argument("after", help="new profile JSON")
    p.add_argument("--interval", type=int, default=100)
    p.add_argument("--threshold", type=float, default=1.0,
                   help="hide deltas smaller than this (cycles)")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep",
                       help="parallel sampling sweep over one workload")
    p.add_argument("workload", help="suite name or kernel:<name>")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--intervals", default="25,50,100,200",
                   help="comma-separated mean sampling intervals")
    p.add_argument("--seeds", type=int, default=1,
                   help="independent sampling seeds per interval")
    p.add_argument("--seed", type=int, default=1, help="base seed")
    p.add_argument("--paired", action="store_true")
    p.add_argument("--core", choices=("ooo", "inorder"), default="ooo")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: one per host core; "
                        "1 runs inline)")
    p.add_argument("--out", help="write the sweep results as JSON")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="flush completed chunks to DIR (content-addressed "
                        "result cache); a re-run skips cached specs")
    p.add_argument("--resume", metavar="DIR",
                   help="resume an interrupted sweep from DIR (same as "
                        "--checkpoint: only missing specs are simulated)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-spec wall-clock timeout in seconds; a worker "
                        "past the deadline is terminated and retried")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts (fresh worker) after a failure, "
                        "timeout, or worker death")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="specs per checkpoint chunk (default: 2 x jobs)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("paths", help="path-reconstruction analysis")
    p.add_argument("workload")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--history", type=int, default=8)
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--interprocedural", action="store_true")
    p.set_defaults(func=cmd_paths)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
