"""Command-line profiler: the DCPI-daemon experience in one command.

Usage::

    repro profile gcc --scale 2 --interval 100
    repro profile compress --paired --out prof.json
    repro profile compress --scale 28 --interval 50000 \
        --mode two-speed --window 2000
    repro report prof.json
    repro paths go --history 8
    repro sweep compress --intervals 25,50,100,200 --jobs 4
    repro serve --port 9137 --snapshot profile.json
    repro push 127.0.0.1:9137 compress --interval 100
    repro sweep compress --jobs 4 --push 127.0.0.1:9137
    repro query 127.0.0.1:9137 top --event DCACHE_MISS
    repro query 127.0.0.1:9137 export --out served.json
    repro probes list 'cpu0.*'
    repro probes watch --period 500 --workload compress
    repro probes list --address 127.0.0.1:9137
    repro list

(Equivalently ``python -m repro`` / ``python -m repro.tools.cli``.)

`profile` runs a suite workload (or a Table 1 stall kernel via
``kernel:<name>``) under ProfileMe on the out-of-order core and prints
the standard reports; `report` re-renders a saved profile; `paths` runs
the Figure 6 path-reconstruction analysis on a workload trace; `sweep`
fans a sampling-interval x seed grid across worker processes via the
engine's resumable sweep runner — with ``--checkpoint``/``--resume`` it
caches results content-addressed by spec hash, survives worker crashes
and timeouts, and re-simulates only what is missing.

The continuous-profiling service lives behind three commands: `serve`
runs the asyncio ingestion server (`repro.service.server`), `push`
streams one profiled run (or a saved profile document) into it, and
`query` reads it back (top/latency/stats/convergence/export).  `sweep
--push <addr>` streams live samples from every worker process into the
same service.

`probes` is the window onto the hierarchical probe registry
(`repro.probes`): `list` enumerates the namespace with metadata, `read`
runs a workload and prints final probe values, `watch` streams readings
periodically while the workload runs.  With `--address` the same three
subcommands inspect a running service's own registry (and the probe
series streamed into it) instead of building a local machine.

Handled errors (bad configuration, unreachable server, unreadable
files) print to stderr and exit 2; only genuine bugs raise.
"""

import argparse
import json
import os
import sys

from repro.analysis.bottlenecks import instruction_metrics
from repro.analysis.cycles import (event_attribution, format_breakdown,
                                   program_breakdown)
from repro.analysis.persistence import (canonical_json, load_database,
                                        save_database)
from repro.analysis.reports import (bottleneck_report, format_table,
                                    latency_table)
from repro.engine.sweep import run_sweep
from repro.errors import ConfigError, ReproError
from repro.engine.session import SessionSpec, run_session
from repro.events import Event
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import SUITE_NAMES, kernel_names, stall_kernel, \
    suite_program


def _load_workload(name, scale):
    if name.endswith(".s"):
        from repro.isa.asm import parse_asm

        with open(name) as stream:
            return parse_asm(stream.read(), name=name)
    if name.startswith("kernel:"):
        return stall_kernel(name.split(":", 1)[1], iterations=200 * scale)
    return suite_program(name, scale=scale)


def cmd_list(_args):
    print("suite workloads: " + ", ".join(SUITE_NAMES))
    print("stall kernels:   " + ", ".join("kernel:" + k
                                          for k in kernel_names()))
    return 0


def cmd_profile(args):
    program = _load_workload(args.workload, args.scale)
    profile = ProfileMeConfig(
        mean_interval=args.interval,
        paired=args.paired,
        pair_window=args.pair_window,
        register_sets=args.register_sets,
        seed=args.seed,
    )
    spec_kwargs = dict(program=program, core_kind=args.core,
                       profile=profile, keep_addresses=args.keep_addresses)
    if args.mode == "two-speed":
        spec_kwargs.update(exec_mode="two-speed", window=args.window,
                           batch_windows=args.batch_windows,
                           window_workers=args.window_workers)
    elif args.batch_windows:
        raise ConfigError("--batch-windows requires --mode two-speed")
    run = run_session(SessionSpec(**spec_kwargs))

    stats = run.stats
    print("workload %s: %d instructions retired in %d cycles "
          "(IPC %.2f), %d aborted, %d mispredicts"
          % (program.name, stats.retired, run.cycles, stats.ipc,
             stats.aborted, stats.mispredicts))
    sampling = run.unit.stats if run.unit is not None else run.sampling_stats
    print("samples: %d delivered via %d interrupts "
          "(%d dropped while busy)"
          % (run.driver.delivered, sampling.interrupts,
             sampling.dropped_busy))
    if run.two_speed is not None:
        two = run.two_speed
        print("two-speed: %d detailed windows of <=%d retired; "
              "%d fast-forwarded + %d detailed instructions "
              "(%.1f%% simulated in detail), %d sample points skipped"
              % (two.windows, args.window, two.fast_forwarded,
                 two.detailed_retired, 100.0 * two.detailed_fraction,
                 two.skipped_samples))
    print()

    top = run.database.top_by_event(Event.RETIRED, limit=args.top)
    rows = [["%#x" % pc, program.fetch(pc).disassemble()
             if program.contains_pc(pc) else "?", count]
            for pc, count in top]
    print(format_table(["pc", "instruction", "retired samples"], rows,
                       title="Hottest instructions"))
    print()
    hot_pcs = [pc for pc, _ in top]
    print(latency_table(run.database, pcs=hot_pcs, program=program))
    print()
    totals, fractions = program_breakdown(run.database, args.interval)
    print(format_breakdown(totals, fractions,
                           event_attribution(run.database)))
    print()
    from repro.analysis.aggregate import hierarchy_report

    print(hierarchy_report(run.database, program, args.interval,
                           limit=args.top))

    if run.pair_analyzer is not None:
        print()
        metrics = instruction_metrics(run.database, args.interval / 2.0,
                                      pair_analyzer=run.pair_analyzer)
        print(bottleneck_report(metrics, run.database, program=program,
                                limit=args.top))

    if args.out:
        save_database(run.database, args.out)
        print("\nprofile written to %s" % args.out)
    return 0


def cmd_report(args):
    database = load_database(args.profile)
    print("profile: %d samples over %d static instructions\n"
          % (database.total_samples, len(database.per_pc)))
    top = database.top_by_event(Event.RETIRED, limit=args.top)
    print(latency_table(database, pcs=[pc for pc, _ in top]))
    print()
    totals, fractions = program_breakdown(database, args.interval)
    print(format_breakdown(totals, fractions, event_attribution(database)))
    return 0


def cmd_compare(args):
    """Diff two saved profiles: where did the new build get worse?"""
    before = load_database(args.before)
    after = load_database(args.after)
    scale_before = args.interval
    scale_after = args.interval

    rows = []
    for pc in sorted(set(before.per_pc) | set(after.per_pc)):
        old = before.profile(pc)
        new = after.profile(pc)
        old_cycles = 0.0
        new_cycles = 0.0
        for name in ("fetch_to_map", "map_to_data_ready",
                     "data_ready_to_issue", "issue_to_retire_ready"):
            if old is not None:
                old_cycles += old.latency(name).total * scale_before
            if new is not None:
                new_cycles += new.latency(name).total * scale_after
        delta = new_cycles - old_cycles
        if abs(delta) < args.threshold:
            continue
        rows.append((delta, pc, old_cycles, new_cycles,
                     (old.samples if old else 0),
                     (new.samples if new else 0)))
    rows.sort(key=lambda r: -r[0])
    print(format_table(
        ["pc", "est. cycles before", "after", "delta", "samples b/a"],
        [["%#x" % pc, "%.0f" % old_cycles, "%.0f" % new_cycles,
          "%+.0f" % delta, "%d/%d" % (old_n, new_n)]
         for delta, pc, old_cycles, new_cycles, old_n, new_n
         in rows[:args.top]],
        title="Largest estimated-cycle regressions (positive = worse)"))
    total_before = sum(r[2] for r in rows)
    total_after = sum(r[3] for r in rows)
    print("\nnet change over reported PCs: %+.0f estimated cycles"
          % (total_after - total_before))
    return 0


def cmd_optimize(args):
    """Close the PGO loop: profile -> plan -> apply -> measured speedup."""
    from repro.analysis.persistence import save_pgo_report
    from repro.pgo.pipeline import options_from_args, run_pgo

    program = _load_workload(args.workload, args.scale)
    options = options_from_args(args)

    def progress(event):
        phase = event.get("phase")
        if phase == "profile":
            print("profiling %s: %d replicate(s), %s mode, interval %d"
                  % (program.name, options.replicates, options.exec_mode,
                     options.interval))
        elif phase == "plan":
            applied = ", ".join(event["applied"]) or "no applicable pass"
            print("planned %d transformation(s) (%s)"
                  % (event["transformations"], applied))
        elif phase == "measure":
            print("measuring %d unit(s): %s"
                  % (len(event["units"]), ", ".join(event["units"])))
        elif phase == "compare":
            print("running ground-truth pipeline for the envelope "
                  "comparison")

    report = run_pgo(program, options, workload=args.workload,
                     progress=progress)
    print()

    rows = []
    for pass_report in report.plan.reports:
        reason = pass_report.reason or "-"
        if pass_report.pcs:
            reason += " [%s]" % ", ".join("%#x" % pc
                                          for pc in pass_report.pcs[:4])
        rows.append([pass_report.name, pass_report.status,
                     len(pass_report.transformations), reason])
    print(format_table(["pass", "status", "transformations", "detail"],
                       rows,
                       title="PGO plan for %s (%d samples, effective "
                       "interval %.1f)"
                       % (program.name, report.total_samples,
                          report.effective_interval)))
    print()

    rows = []
    for m in report.measurements:
        rows.append([
            m.name, m.protocol, m.baseline_cycles,
            "%.0f" % (m.baseline_cycles - m.mean_reduction),
            "%.0f" % m.mean_reduction,
            "%.2f%%" % (100.0 * m.relative_reduction),
            "[%.0f, %.0f]" % (m.ci_low, m.ci_high),
            "yes" if m.significant else "no"])
    print(format_table(
        ["unit", "protocol", "baseline", "optimized", "reduction",
         "relative", "95% CI", "significant"],
        rows,
        title="Measured cycle reduction (%d replicate(s))"
        % options.replicates))

    comparison = report.comparison
    if comparison is not None:
        print()
        rows = [[c.name, c.sampled, c.truth, c.matched, len(c.conflicts)]
                for c in comparison.per_pass]
        print(format_table(
            ["pass", "sampled decisions", "truth decisions", "matched",
             "conflicts"],
            rows, title="Sampled vs ground-truth decisions"))
        print("\nsampled speedup %.2f%% vs ground-truth %.2f%% "
              "(ratio %s); k_min=%d so envelope is 1 +- %.3f -> %s"
              % (100.0 * comparison.sampled_reduction,
                 100.0 * comparison.truth_reduction,
                 "%.3f" % comparison.speedup_ratio
                 if comparison.speedup_ratio is not None else "n/a",
                 comparison.k_min, comparison.envelope_half,
                 "WITHIN envelope" if comparison.speedup_within_envelope
                 else "OUTSIDE envelope"))
        if comparison.envelope_fraction is not None:
            print("per-decision estimates inside 1 +- 1/sqrt(k): "
                  "%d/%d (%.0f%%)"
                  % (sum(1 for r in comparison.envelope_rows if r.within),
                     len(comparison.envelope_rows),
                     100.0 * comparison.envelope_fraction))

    if args.report:
        save_pgo_report(report.document, args.report)
        print("\nPGO report written to %s" % args.report)
    return 0


def _sweep_progress(event):
    """Default progress hook for `repro sweep`: checkpoint + retry lines."""
    metrics = event["metrics"]
    if event["kind"] == "flush":
        print("checkpoint: %d/%d done (%d ok, %d cached, %d failed, "
              "%d timeout, %d retries), %.0f cycles/s"
              % (metrics.done, metrics.total, metrics.ok, metrics.cached,
                 metrics.failed, metrics.timeouts, metrics.retries,
                 metrics.cycles_per_second))
    elif event["kind"] == "retry":
        print("retrying spec %d (attempt %d failed)"
              % (event["index"], event["attempts"]))


def cmd_sweep(args):
    """Profile one workload over an interval x seed grid, in parallel.

    With ``--checkpoint``/``--resume`` the sweep runs on the resumable
    runner: completed chunks are flushed to the directory as
    content-addressed result documents, and a re-run (or ``--resume``
    after a crash) simulates only the specs whose results are missing.

    With ``--push <host:port>`` every worker process streams its live
    samples into a running ``repro serve`` instance; cache hits (which
    simulate nothing) are forwarded afterwards as whole profile
    documents, so the service ends up with the full sweep either way.
    """
    program = _load_workload(args.workload, args.scale)
    try:
        intervals = [int(s) for s in args.intervals.split(",") if s]
    except ValueError:
        raise ConfigError("--intervals must be a comma-separated list of "
                          "integers, got %r" % (args.intervals,))
    specs = [
        SessionSpec(
            program=program, core_kind=args.core,
            profile=ProfileMeConfig(mean_interval=interval,
                                    paired=args.paired,
                                    seed=args.seed + seed_index),
            keep_records=False,
            push_to=args.push, push_wire=args.wire,
            exec_mode=args.mode, window=args.window,
            label="S=%d seed=%d" % (interval, args.seed + seed_index))
        for interval in intervals
        for seed_index in range(args.seeds)
    ]
    store = args.resume or args.checkpoint
    sweep = run_sweep(specs, workers=args.jobs, timeout=args.timeout,
                      retries=args.retries, store=store,
                      chunk_size=args.chunk_size,
                      progress=_sweep_progress)
    if args.push:
        _push_cached_outcomes(args.push, sweep, wire=args.wire)

    rows = []
    report = []
    for outcome in sweep.outcomes:
        spec = outcome.spec
        result = outcome.result
        entry = {
            "label": spec.label,
            "interval": spec.profile.mean_interval,
            "seed": spec.profile.seed,
            "status": outcome.status,
            "spec_key": outcome.key,
        }
        if result is not None:
            samples = (result.database.total_samples
                       if result.database is not None else 0)
            rows.append([spec.label, outcome.status, result.stats.cycles,
                         result.stats.retired, "%.2f" % result.stats.ipc,
                         samples,
                         "%.1f" % (1000.0 * samples
                                   / max(1, result.stats.fetched))])
            entry.update({
                "cycles": result.stats.cycles,
                "retired": result.stats.retired,
                "fetched": result.stats.fetched,
                "ipc": result.stats.ipc,
                "samples": samples,
            })
        else:
            rows.append([spec.label, outcome.status, "-", "-", "-", "-", "-"])
            entry["error"] = outcome.error
        report.append(entry)
    metrics = sweep.metrics
    print(format_table(
        ["run", "status", "cycles", "retired", "ipc", "samples",
         "samples/1k fetched"],
        rows,
        title="Sampling sweep: %s on %s (%d runs, jobs=%s)"
        % (program.name, args.core, len(specs),
           "auto" if args.jobs is None else args.jobs)))
    print("\n%d ok, %d cached, %d failed, %d timeout; %d retries; "
          "%d cycles simulated (%.0f cycles/s)"
          % (metrics.ok, metrics.cached, metrics.failed, metrics.timeouts,
             metrics.retries, metrics.simulated_cycles,
             metrics.cycles_per_second))
    if args.out:
        with open(args.out, "w") as stream:
            json.dump({"workload": program.name, "core": args.core,
                       "metrics": metrics.snapshot(),
                       "runs": report}, stream, indent=2)
        print("\nsweep results written to %s" % args.out)
    return 0 if not sweep.failures() else 1


def _push_cached_outcomes(address, sweep, wire=2):
    """Forward cache hits (no simulation, no live stream) to the service."""
    from repro.engine.sweep import STATUS_CACHED
    from repro.service.client import ProfileClient

    documents = [outcome.payload["database"] for outcome in sweep.outcomes
                 if outcome.status == STATUS_CACHED and outcome.payload
                 and outcome.payload.get("database")]
    with ProfileClient(address, wire=wire) as client:
        for document in documents:
            client.push_database(document)
        info = client.drain()
    print("pushed to %s: %d cached profile(s) merged; service drops so "
          "far: %d batches / %d records"
          % (address, len(documents), info.get("dropped_batches", 0),
             info.get("dropped_records", 0)))


# ----------------------------------------------------------------------
# Continuous-profiling service commands.


def cmd_serve(args):
    """Run the continuous-profiling ingestion server until interrupted."""
    import asyncio
    import signal

    from repro.service.server import ProfileServer

    server = ProfileServer(host=args.host, port=args.port,
                           shards=args.shards, queue_size=args.queue_size,
                           keep_addresses=args.keep_addresses,
                           snapshot_path=args.snapshot,
                           snapshot_interval=args.snapshot_interval,
                           workers=not args.inline_fold,
                           rollup_interval=args.rollup_interval,
                           retain_buckets=args.retain_buckets)

    async def _serve():
        await server.start()
        print("profile service listening on %s:%d (%d shard worker(s), "
              "queue %d/shard%s)"
              % (server.host, server.port, server.shard_count,
                 server.queue_size,
                 ", snapshots to %s" % args.snapshot if args.snapshot
                 else ""), flush=True)
        if args.port_file:
            # Atomic, so a watcher never reads a half-written port.
            tmp = args.port_file + ".tmp"
            with open(tmp, "w") as stream:
                stream.write("%d\n" % server.port)
            import os

            os.replace(tmp, args.port_file)
        stopping = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: Ctrl-C still lands as KeyboardInterrupt
        serving = asyncio.ensure_future(server.serve_forever())
        waiter = asyncio.ensure_future(stopping.wait())
        try:
            await asyncio.wait([serving, waiter],
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (serving, waiter):
                task.cancel()
            # Graceful shutdown: the final snapshot lands even on SIGTERM.
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_push(args):
    """Profile a workload and stream the samples into a running service.

    With ``--database`` no simulation happens: the saved profile
    document is shipped for server-side merge instead.
    """
    from repro.service.client import ProfileClient

    if args.database:
        document = load_database(args.database).to_dict()
        with ProfileClient(args.address, wire=args.wire) as client:
            if not client.push_database(document):
                raise ConfigError("could not deliver %s to %s"
                                  % (args.database, args.address))
            info = client.drain()
        print("pushed %s (%d samples) to %s; service drops so far: "
              "%d batches / %d records"
              % (args.database, document["total_samples"], args.address,
                 info.get("dropped_batches", 0),
                 info.get("dropped_records", 0)))
        return 0
    if not args.workload:
        raise ConfigError("push needs a workload (or --database FILE)")
    program = _load_workload(args.workload, args.scale)
    spec = SessionSpec(
        program=program, core_kind=args.core,
        profile=ProfileMeConfig(mean_interval=args.interval,
                                paired=args.paired, seed=args.seed),
        keep_records=False, push_to=args.address, push_wire=args.wire,
        label="push:%s" % program.name)
    result = run_session(spec)
    with ProfileClient(args.address, wire=args.wire) as client:
        reply = client.query("stats")
    print("pushed %s: %d samples from %d retired instructions "
          "(%d cycles) to %s"
          % (program.name,
             result.database.total_samples if result.database else 0,
             result.stats.retired, result.cycles, args.address))
    print("service now holds %d samples over %d static instructions "
          "(%d batches dropped)"
          % (reply.get("total_samples", 0),
             reply.get("static_instructions", 0),
             reply.get("dropped_batches", 0)))
    return 0


def _query_epoch_params(args):
    """Validate ``query epochs`` range arguments before connecting.

    Returns the keyword dict for :meth:`ProfileClient.epochs`.  Raises
    :class:`ConfigError` (exit 2) on an empty or malformed range, so a
    typo never turns into a confusing server-side refusal.
    """
    from repro.errors import ProtocolError
    from repro.service.protocol import epoch_range_params

    try:
        return epoch_range_params(args.since, args.until, args.limit)
    except ProtocolError as exc:
        raise ConfigError(str(exc)) from exc


def cmd_query(args):
    """Query a running profile service (top/latency/stats/.../epochs)."""
    from repro.service.client import ProfileClient

    # Reject malformed arguments *before* touching the network: a bad
    # limit, PC, or epoch range is the operator's typo, not the
    # server's problem, and must exit 2 with a one-line diagnosis.
    if args.cmd in ("top", "convergence", "epochs") and args.limit < 1:
        raise ConfigError("--limit must be >= 1, got %d" % (args.limit,))
    pc = None
    if args.cmd == "latency":
        if args.pc is None:
            raise ConfigError("query latency needs --pc")
        try:
            pc = int(args.pc, 0)
        except ValueError:
            raise ConfigError("malformed --pc %r (expected an integer, "
                              "hex ok)" % (args.pc,)) from None
    epoch_params = _query_epoch_params(args) if args.cmd == "epochs" else None

    with ProfileClient(args.address, wire=args.wire) as client:
        if args.drain:
            client.drain()
        if args.cmd == "top":
            reply = client.query("top", event=args.event, limit=args.limit)
            print(format_table(
                ["pc", "%s samples" % reply["event"].lower()],
                [["%#x" % pc, count] for pc, count in reply["top"]],
                title="Top PCs by %s (%d samples total, %d records dropped)"
                % (reply["event"], reply["total_samples"],
                   reply["dropped_records"])))
        elif args.cmd == "latency":
            reply = client.query("latency", pc=pc)
            if not reply.get("found"):
                print("pc %#x: no samples" % reply["pc"])
                return 1
            rows = []
            for name, (count, total, total_sq) in sorted(
                    reply["latencies"].items()):
                mean = total / count if count else 0.0
                var = max(0.0, total_sq / count - mean * mean) if count else 0.0
                rows.append([name, count, "%.2f" % mean, "%.2f" % var])
            print(format_table(["latency register", "n", "mean", "variance"],
                               rows,
                               title="pc %#x (%d samples)"
                               % (reply["pc"], reply["samples"])))
        elif args.cmd == "stats":
            reply = client.query("stats")
            stats = reply["stats"]
            print("service: %d samples over %d static instructions "
                  "in %d shard(s)"
                  % (reply["total_samples"], reply["static_instructions"],
                     len(reply["shards"])))
            for key in sorted(stats):
                print("  %-18s %d" % (key, stats[key]))
        elif args.cmd == "convergence":
            reply = client.query("convergence", event=args.event,
                                 limit=args.limit)
            print(format_table(
                ["pc", "samples", "relative error (1/sqrt(k))"],
                [["%#x" % row["pc"], row["samples"],
                  "%.3f" % row["envelope"] if row["envelope"] is not None
                  else "-"]
                 for row in reply["convergence"]],
                title="Convergence status for %s (%d samples total)"
                % (reply["event"], reply["total_samples"])))
        elif args.cmd == "epochs":
            reply = client.query("epochs", **epoch_params)
            rows = [[row["level"], row["start"],
                     row["start"] + row["span"], row["samples"],
                     row["pcs"]]
                    for row in reply["epochs"]]
            print(format_table(
                ["level", "start", "end", "samples", "pcs"], rows,
                title="Rollup epochs (interval %d, retain %s): "
                      "%d samples retained, %d evicted"
                % (reply["rollup_interval"],
                   reply["retain_buckets"] or "unbounded",
                   reply["total_samples"], reply["evicted_samples"])))
        elif args.cmd == "export":
            reply = client.query("export")
            text = canonical_json(reply["database"])
            if args.out:
                with open(args.out, "w") as stream:
                    stream.write(text)
                print("exported %d samples to %s (%d bytes, %d records "
                      "dropped server-side)"
                      % (reply["database"]["total_samples"], args.out,
                         len(text), reply["dropped_records"]))
            else:
                print(text)
        else:
            raise ConfigError("unknown query command %r" % (args.cmd,))
    return 0


# ----------------------------------------------------------------------
# Probe-registry introspection.


def _probe_machine(args):
    """Build the standard introspectable machine for local probe commands.

    Mirrors ``run_session``'s wiring — core + ProfileMe stack + one
    event counter, all on one registry — so every probe subtree a
    profiled session exposes (``cpu*``, ``mem``, ``branch``,
    ``profileme``, ``counters``) is enumerable here too.
    """
    from repro.counters.counter import (CounterConfig, CounterEvent,
                                        EventCounter)
    from repro.engine.session import attach_profileme, build_core

    program = _load_workload(args.workload, args.scale)
    core = build_core(program, core_kind=args.core)
    stack = attach_profileme(
        core, ProfileMeConfig(mean_interval=args.interval, seed=args.seed),
        keep_records=False)
    counter = EventCounter(CounterConfig(event=CounterEvent.RETIRED_INST,
                                         period=args.interval))
    core.add_probe(counter)
    registry = core.probe_registry()
    stack.unit.register_probes(registry)
    counter.register_probes(registry)
    return core, registry


def _format_probe_value(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def _print_probe_list(properties, pattern):
    """Render probe metadata; exit status 1 when nothing matches.

    The nonzero exit on an empty namespace is load-bearing: the CI
    service-smoke step uses ``repro probes list --address`` as a
    liveness check for the server-side registry.
    """
    if not properties:
        print("error: no probes match %r" % (pattern,), file=sys.stderr)
        return 1
    if isinstance(properties, list):  # registry.properties() form
        properties = {meta["name"]: meta for meta in properties}
    rows = [[name, meta["kind"], meta["unit"] or "-", meta["description"]]
            for name, meta in sorted(properties.items())]
    print(format_table(["probe", "kind", "unit", "description"], rows,
                       title="%d probe(s) matching %r"
                       % (len(rows), pattern)))
    return 0


def cmd_probes(args):
    """Inspect the probe registry: local machine or running service."""
    if args.address:
        return _probes_remote(args)
    return _probes_local(args)


def _probes_local(args):
    core, registry = _probe_machine(args)
    command = args.probes_cmd

    if command == "list":
        return _print_probe_list(registry.properties(args.pattern),
                                 args.pattern)

    if command == "watch":
        from repro.probes.stream import ProbeStreamer

        ticks = [0]

        def sink(cycle, readings):
            ticks[0] += 1
            for name in sorted(readings):
                print("%10d  %-44s %s"
                      % (cycle, name,
                         _format_probe_value(readings[name])))

        streamer = core.add_probe(ProbeStreamer(
            pattern=args.pattern, period=args.period, sink=sink,
            keep=False))
        cycles = core.run(max_cycles=args.max_cycles)
        streamer.sample(core.cycle)  # final reading at the end cycle
        print("\nwatched %r every %d cycles: %d reading(s) over "
              "%d cycles" % (args.pattern, args.period, ticks[0], cycles))
        return 0

    # read: run the workload, then print the final registry snapshot.
    cycles = core.run(max_cycles=args.max_cycles)
    snapshot = registry.snapshot(args.pattern, refresh=True)
    if not snapshot:
        print("error: no probes match %r" % (args.pattern,),
              file=sys.stderr)
        return 1
    rows = [[name, _format_probe_value(meta["value"]), meta["kind"],
             meta["unit"] or "-"]
            for name, meta in sorted(snapshot.items())]
    print(format_table(["probe", "value", "kind", "unit"], rows,
                       title="%d probe(s) after %d cycles of %s"
                       % (len(rows), cycles, args.workload)))
    return 0


def _probes_remote(args):
    import time

    from repro.service.client import ProfileClient

    command = args.probes_cmd
    with ProfileClient(args.address) as client:
        if command == "watch":
            polls = 0
            while True:
                reply = client.query("probes", pattern=args.pattern)
                _print_remote_probes(reply, values=True)
                polls += 1
                if args.count and polls >= args.count:
                    return 0
                time.sleep(args.every)
        reply = client.query("probes", pattern=args.pattern)
    if command == "list":
        return _print_probe_list(reply.get("probes", {}), args.pattern)
    if not reply.get("probes") and not reply.get("series"):
        # Neither a live registry probe nor a streamed series matches.
        print("error: no probes match %r on %s"
              % (args.pattern, args.address), file=sys.stderr)
        return 1
    _print_remote_probes(reply, values=True)
    return 0


def _print_remote_probes(reply, values=False):
    probes = reply.get("probes", {})
    rows = [[name, _format_probe_value(meta["value"]), meta["kind"],
             meta["unit"] or "-"]
            for name, meta in sorted(probes.items())]
    print(format_table(["probe", "value", "kind", "unit"], rows,
                       title="service registry: %d probe(s)" % len(rows)))
    series = reply.get("series", {})
    if series:
        rows = []
        for name in sorted(series):
            count, total, minimum, maximum, last, last_tick = series[name]
            rows.append([name, count,
                         "%.4g" % (total / count if count else 0.0),
                         "%.4g" % minimum, "%.4g" % maximum,
                         "%.4g @ %d" % (last, last_tick)])
        print()
        print(format_table(
            ["streamed series", "n", "mean", "min", "max", "last"],
            rows, title="probe series folded from probe_push frames"))


def cmd_paths(args):
    from repro.analysis.pathprof import run_reconstruction_experiment
    from repro.isa.interpreter import functional_trace
    from repro.utils.rng import SamplingRng

    program = _load_workload(args.workload, args.scale)
    trace = functional_trace(program)
    step = max(1, (len(trace) - 400) // args.samples)
    indices = list(range(300, len(trace) - 1, step))
    lengths = sorted(set([1, 2, 4, args.history]))
    results = run_reconstruction_experiment(
        program, trace, history_lengths=lengths, sample_indices=indices,
        pair_rng=SamplingRng(args.seed),
        interprocedural=args.interprocedural)
    rows = [[bits,
             "%.2f" % results[bits]["execution_counts"],
             "%.2f" % results[bits]["history_bits"],
             "%.2f" % results[bits]["history_plus_pair"]]
            for bits in lengths]
    print(format_table(
        ["history bits", "exec counts", "history", "history+pair"], rows,
        title="Path reconstruction success (%s, %d samples)"
        % ("interprocedural" if args.interprocedural
           else "intraprocedural", len(indices))))
    return 0


def cmd_bench(args):
    from repro.tools import bench

    # Load the baseline up front: with default arguments --out IS the
    # committed baseline file, so it must be read before the overwrite.
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(bench.DEFAULT_OUTPUT):
        baseline_path = bench.DEFAULT_OUTPUT
    baseline = None
    if baseline_path:
        try:
            baseline = bench.load_document(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("bench: cannot read baseline %s: %s"
                  % (baseline_path, exc), file=sys.stderr)
            baseline = None

    def progress(label):
        print("bench: running %s ..." % label, file=sys.stderr)

    document = bench.run_bench(quick=args.quick, repeats=args.repeats,
                               progress=progress)
    bench.save_document(document, args.out)
    print("wrote %s (rev %s)" % (args.out, document["git_rev"]))
    for kind in sorted(document["results"]):
        for label, entry in sorted(document["results"][kind].items()):
            line = ("  %s/%s: %d cycles in %.3fs = %d cycles/s, "
                    "%d retired instr/s"
                    % (kind, label, entry["cycles"], entry["wall_s"],
                       entry["cycles_per_sec"], entry["retired_per_sec"]))
            if "speedup_vs_detailed" in entry:
                line += " (%.2fx vs detailed)" % entry["speedup_vs_detailed"]
            print(line)

    if baseline is not None:
        lines, simulation_changed = bench.diff_lines(baseline, document)
        print("vs baseline %s:" % baseline_path)
        for line in lines:
            print("  " + line)
        if simulation_changed:
            print("bench: cycle counts diverge from the baseline — the "
                  "simulated machine changed", file=sys.stderr)
            return 1
    return 0


def _package_version():
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    # Narrow on purpose: metadata.PackageNotFoundError subclasses
    # ImportError, and anything broader would also swallow
    # KeyboardInterrupt/SystemExit raised while importing.
    except ImportError:
        from repro import __version__

        return __version__


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="ProfileMe reproduction CLI")
    parser.add_argument("--version", action="version",
                        version="repro %s" % _package_version())
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads") \
        .set_defaults(func=cmd_list)

    p = sub.add_parser("profile", help="profile a workload with ProfileMe")
    p.add_argument("workload", help="suite name or kernel:<name>")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--interval", type=int, default=100,
                   help="mean sampling interval S (fetched instructions)")
    p.add_argument("--paired", action="store_true",
                   help="enable paired sampling")
    p.add_argument("--pair-window", type=int, default=96,
                   help="paired-sampling window W")
    p.add_argument("--mode", choices=("detailed", "two-speed"),
                   default="detailed",
                   help="detailed simulates every instruction; two-speed "
                        "fast-forwards between samples and runs a bounded "
                        "detailed window around each one")
    p.add_argument("--window", type=int, default=2000,
                   help="two-speed detailed-window length in retired "
                        "instructions (first quarter is pipeline warm-up)")
    p.add_argument("--batch-windows", action="store_true",
                   help="two-speed only: plan every detailed window in "
                        "one functional pass, then run the windows "
                        "independently (see docs/architecture.md for the "
                        "warm-state approximation this accepts)")
    p.add_argument("--window-workers", type=int, default=1,
                   help="processes to fan batched windows across "
                        "(byte-identical results at any worker count)")
    p.add_argument("--register-sets", type=int, default=1)
    p.add_argument("--core", choices=("ooo", "inorder"), default="ooo")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--top", type=int, default=8)
    p.add_argument("--keep-addresses", type=int, default=0)
    p.add_argument("--out", help="write the profile database as JSON")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="render a saved profile")
    p.add_argument("profile", help="path to a saved profile JSON")
    p.add_argument("--interval", type=int, default=100,
                   help="sampling interval the profile was taken at")
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("compare",
                       help="diff two saved profiles (regressions)")
    p.add_argument("before", help="baseline profile JSON")
    p.add_argument("after", help="new profile JSON")
    p.add_argument("--interval", type=int, default=100)
    p.add_argument("--threshold", type=float, default=1.0,
                   help="hide deltas smaller than this (cycles)")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "optimize",
        help="close the PGO loop: profile -> optimize -> measured speedup")
    p.add_argument("workload", help="suite name or kernel:<name>")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--passes", default=None,
                   help="comma-separated subset of layout,prefetch,hints "
                        "(default: all three)")
    p.add_argument("--interval", type=int, default=100,
                   help="mean sampling interval S (fetched instructions)")
    p.add_argument("--seeds", type=int, default=3,
                   help="profile-seed replicates; the confidence interval "
                        "is over their per-replicate reductions")
    p.add_argument("--seed", type=int, default=1, help="base sampling seed")
    p.add_argument("--mode", choices=("detailed", "two-speed"),
                   default="detailed",
                   help="profiling engine (measurement always runs "
                        "detailed)")
    p.add_argument("--window", type=int, default=2000,
                   help="two-speed detailed-window length")
    p.add_argument("--core", choices=("ooo", "inorder"), default="ooo")
    p.add_argument("--max-retired", type=int, default=None,
                   help="cap every run at this many retired instructions")
    p.add_argument("--lookahead", type=int, default=6,
                   help="prefetch distance in strides")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for profiling/measurement runs "
                        "(1 runs inline)")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="content-addressed result cache shared by the "
                        "profile and measurement runs; re-running an "
                        "identical optimize is then free")
    p.add_argument("--report", metavar="FILE",
                   help="write the machine-readable repro-pgo-report "
                        "JSON here")
    p.add_argument("--compare-truth", action="store_true",
                   help="also run the pipeline on exact ground-truth "
                        "counts and report the 1/sqrt(k) envelope verdict")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: at most 2 replicates, capped run "
                        "length")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("sweep",
                       help="parallel sampling sweep over one workload")
    p.add_argument("workload", help="suite name or kernel:<name>")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--intervals", default="25,50,100,200",
                   help="comma-separated mean sampling intervals")
    p.add_argument("--seeds", type=int, default=1,
                   help="independent sampling seeds per interval")
    p.add_argument("--seed", type=int, default=1, help="base seed")
    p.add_argument("--paired", action="store_true")
    p.add_argument("--core", choices=("ooo", "inorder"), default="ooo")
    p.add_argument("--mode", choices=("detailed", "two-speed"),
                   default="detailed",
                   help="run every spec detailed, or two-speed (functional "
                        "fast-forward between sampled detailed windows)")
    p.add_argument("--window", type=int, default=2000,
                   help="two-speed detailed-window length (retired "
                        "instructions)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: one per host core; "
                        "1 runs inline)")
    p.add_argument("--out", help="write the sweep results as JSON")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="flush completed chunks to DIR (content-addressed "
                        "result cache); a re-run skips cached specs")
    p.add_argument("--resume", metavar="DIR",
                   help="resume an interrupted sweep from DIR (same as "
                        "--checkpoint: only missing specs are simulated)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-spec wall-clock timeout in seconds; a worker "
                        "past the deadline is terminated and retried")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts (fresh worker) after a failure, "
                        "timeout, or worker death")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="specs per checkpoint chunk (default: 2 x jobs)")
    p.add_argument("--push", metavar="HOST:PORT",
                   help="stream live samples from every worker into a "
                        "running `repro serve` (cache hits are forwarded "
                        "as merged profile documents)")
    p.add_argument("--wire", type=int, choices=(1, 2), default=2,
                   help="wire protocol version for --push (2 = binary, "
                        "1 = JSON; v2 falls back to v1 automatically "
                        "against an old server)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("serve",
                       help="run the continuous-profiling service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9137,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--shards", type=int, default=4,
                   help="ingest database shards (connections are "
                        "assigned round-robin)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="batches buffered per connection before the "
                        "server starts dropping (and counting) them")
    p.add_argument("--keep-addresses", type=int, default=0,
                   help="effective addresses retained per PC")
    p.add_argument("--snapshot", metavar="PATH",
                   help="periodically persist the merged profile here "
                        "(atomic writes; final snapshot on shutdown)")
    p.add_argument("--snapshot-interval", type=float, default=30.0,
                   help="seconds between snapshots")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port here once listening "
                        "(for scripts using --port 0)")
    p.add_argument("--inline-fold", action="store_true",
                   help="fold on the event loop instead of dedicated "
                        "shard worker processes (debugging / "
                        "single-core embedding)")
    p.add_argument("--rollup-interval", type=int, default=0,
                   help="fold samples into time buckets of this many "
                        "cycles, rolled up into exponentially coarser "
                        "epochs as they age (0 = one flat store)")
    p.add_argument("--retain-buckets", type=int, default=0,
                   help="cap live buckets per shard; past it the oldest "
                        "are evicted and counted (0 = unbounded; "
                        "requires --rollup-interval)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("push",
                       help="profile a workload and stream it to a service")
    p.add_argument("address", help="service address, host:port")
    p.add_argument("workload", nargs="?",
                   help="suite name or kernel:<name>")
    p.add_argument("--database", metavar="FILE",
                   help="push a saved profile JSON instead of simulating")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--interval", type=int, default=100)
    p.add_argument("--paired", action="store_true")
    p.add_argument("--core", choices=("ooo", "inorder"), default="ooo")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--wire", type=int, choices=(1, 2), default=2,
                   help="wire protocol version (2 = binary, 1 = JSON)")
    p.set_defaults(func=cmd_push)

    p = sub.add_parser("query", help="query a running profile service")
    p.add_argument("address", help="service address, host:port")
    p.add_argument("cmd",
                   choices=("top", "latency", "stats", "convergence",
                            "export", "epochs"))
    p.add_argument("--event", default="RETIRED",
                   help="event flag for top/convergence")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--pc", help="PC for the latency query (hex ok)")
    p.add_argument("--since", type=int, default=None,
                   help="epochs: keep buckets overlapping ticks >= SINCE")
    p.add_argument("--until", type=int, default=None,
                   help="epochs: keep buckets starting before UNTIL")
    p.add_argument("--out", help="write the export document here")
    p.add_argument("--drain", action="store_true",
                   help="barrier this connection's ingest queue before "
                        "querying")
    p.add_argument("--wire", type=int, choices=(1, 2), default=2,
                   help="wire protocol version to negotiate")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("probes",
                       help="inspect the hierarchical probe registry")
    probe_common = argparse.ArgumentParser(add_help=False)
    probe_common.add_argument("pattern", nargs="?", default="*",
                              help="fnmatch-style probe-name pattern "
                                   "(quote wildcards from the shell)")
    probe_common.add_argument("--address", metavar="HOST:PORT",
                              help="inspect a running service's registry "
                                   "instead of building a local machine")
    probe_common.add_argument("--workload", default="compress",
                              help="workload for the local machine "
                                   "(suite name or kernel:<name>)")
    probe_common.add_argument("--scale", type=int, default=1)
    probe_common.add_argument("--core", choices=("ooo", "inorder"),
                              default="ooo")
    probe_common.add_argument("--interval", type=int, default=100,
                              help="mean sampling interval for the "
                                   "attached ProfileMe unit")
    probe_common.add_argument("--seed", type=int, default=1)
    probes_sub = p.add_subparsers(dest="probes_cmd", required=True)
    pp = probes_sub.add_parser(
        "list", parents=[probe_common],
        help="enumerate probe names and metadata (exit 1 if none match)")
    pp.set_defaults(func=cmd_probes)
    pp = probes_sub.add_parser(
        "read", parents=[probe_common],
        help="run the workload, then print final probe values")
    pp.add_argument("--max-cycles", type=int, default=200_000)
    pp.set_defaults(func=cmd_probes)
    pp = probes_sub.add_parser(
        "watch", parents=[probe_common],
        help="stream probe readings while the workload runs "
             "(with --address: poll the service registry)")
    pp.add_argument("--period", type=int, default=1000,
                    help="cycles between local readings")
    pp.add_argument("--max-cycles", type=int, default=200_000)
    pp.add_argument("--every", type=float, default=2.0,
                    help="seconds between service polls (--address)")
    pp.add_argument("--count", type=int, default=0,
                    help="stop after this many service polls "
                         "(0 = until interrupted)")
    pp.set_defaults(func=cmd_probes)

    p = sub.add_parser(
        "bench",
        help="measure simulator throughput on the pinned workload set")
    p.add_argument("--quick", action="store_true",
                   help="small workload set, one repeat (CI smoke)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per case (default: 3, 1 with "
                        "--quick); best run is kept")
    p.add_argument("--out", default="BENCH_core_throughput.json",
                   help="where to write the result document")
    p.add_argument("--baseline", default=None,
                   help="bench document to diff against (default: the "
                        "committed BENCH_core_throughput.json if present)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("paths", help="path-reconstruction analysis")
    p.add_argument("workload")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--history", type=int, default=8)
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--interprocedural", action="store_true")
    p.set_defaults(func=cmd_paths)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % (exc,), file=sys.stderr)
        return 2
    except OSError as exc:
        # Unreachable service, refused connection, unwritable output.
        print("error: %s" % (exc,), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
