"""`repro bench`: the committed simulator-throughput trajectory.

Runs a pinned workload set on all three cores (out-of-order, in-order,
SMT) with no probes attached — the configuration the ROADMAP's
"as fast as the hardware allows" north star is about — and writes a
``BENCH_core_throughput.json`` document carrying cycles/s, retired
instructions/s, machine info, and the git revision.  Committing the
document per PR turns isolated numbers into a perf trajectory, and
``diff_lines`` renders the comparison against the committed baseline.

The pinned set is deliberately small and fixed: trajectory points are
only comparable if every PR measures the same work.  Simulated cycle
counts are machine-independent, so a cycle-count mismatch against the
baseline means the *simulation* changed (flagged loudly); wall-clock
throughput is hardware-dependent and reported as an informational
delta.
"""

import json
import platform
import subprocess
import time

from repro.engine.session import SessionSpec, run_session
from repro.profileme.unit import ProfileMeConfig
from repro.workloads.suite import suite_program

BENCH_KIND = "repro-bench-core-throughput"
BENCH_VERSION = 1
DEFAULT_OUTPUT = "BENCH_core_throughput.json"

# (workload, scale) per single-context core; one pair for SMT.
FULL_WORKLOADS = (("compress", 2), ("gcc", 1), ("li", 1))
QUICK_WORKLOADS = (("compress", 1),)
SMT_PAIR = ("compress", "li")
SMT_MAX_CYCLES = 200_000

# Two-speed acceptance pair: (workload, scale, mean_interval, window).
# The full flavour pins a >= 10^6-retired-instruction run so the
# detailed-vs-two-speed speedup is measured at profiling scale; both
# rows use one timing repeat (the detailed row alone dominates bench
# wall-clock, and its cycle count is deterministic either way).
# Window 400 (not 2000): ~100 retired per sample point is ample for
# pipeline warm-up (the warm-up prefix is window // 4) and keeps the
# detailed fraction small enough that the trace-cache fast-forward
# dominates — the configuration a profiling user would actually run.
TWOSPEED_FULL = ("compress", 28, 50_000, 400)
TWOSPEED_QUICK = ("compress", 2, 5_000, 400)

# Functional-interpreter rows: the decoded-block trace-cache engine
# (repro.cpu.tracecache) that two-speed fast-forward and functional
# profiling run on.  It has no cycle axis, so `retired`/`samples` are
# its determinism guard and retired instr/s its throughput.
INTERP_FULL = (("compress", 12), ("li", 8))
INTERP_QUICK = (("compress", 4),)


def git_revision():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
        rev = out.stdout.strip()
        if not rev:
            return "unknown"
        status = subprocess.run(["git", "status", "--porcelain"],
                                capture_output=True, text=True, timeout=10)
        if status.stdout.strip():
            rev += "+"  # measured tree has uncommitted changes
        return rev
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def machine_info():
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


def _measure(spec, repeats):
    """Run *spec* `repeats` times; keep the best wall-clock run."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_session(spec)
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, result)
    wall, result = best
    entry = {
        "cycles": result.cycles,
        "retired": result.stats.retired,
        "wall_s": round(wall, 6),
        "cycles_per_sec": int(result.cycles / wall) if wall else 0,
        "retired_per_sec": int(result.stats.retired / wall) if wall else 0,
    }
    if result.database is not None:
        entry["samples"] = result.database.total_samples
    return entry


def _measure_twospeed(quick, progress):
    """Detailed-vs-two-speed rows at the same sampling configuration.

    Both rows carry ``samples``: the profile a two-speed run delivers is
    its whole point, so a drifting sample count is a behavior change
    even when wall-clock improves (``diff_lines`` flags it).
    """
    name, scale, interval, window = TWOSPEED_QUICK if quick else TWOSPEED_FULL
    program = suite_program(name, scale=scale)
    profile = ProfileMeConfig(mean_interval=interval, seed=7)
    label = "%s@%d/S=%d" % (name, scale, interval)
    rows = {}
    for mode in ("detailed", "two-speed"):
        if progress:
            progress("twospeed/%s/%s" % (label, mode))
        kwargs = dict(program=program, profile=profile, keep_records=False)
        if mode == "two-speed":
            kwargs.update(exec_mode="two-speed", window=window)
        rows["%s/%s" % (label, mode)] = _measure(SessionSpec(**kwargs), 1)
    detailed = rows["%s/detailed" % label]
    two_speed = rows["%s/two-speed" % label]
    if detailed["retired_per_sec"]:
        two_speed["speedup_vs_detailed"] = round(
            two_speed["retired_per_sec"] / detailed["retired_per_sec"], 2)
    return rows


def _measure_interpreter(quick, repeats, progress):
    """Trace-cache interpreter rows (fused-block functional profiling)."""
    from repro.cpu.functional import FunctionalProfiler

    rows = {}
    for name, scale in (INTERP_QUICK if quick else INTERP_FULL):
        label = "%s@%d" % (name, scale)
        if progress:
            progress("interpreter/%s" % label)
        best = None
        for _ in range(repeats):
            profiler = FunctionalProfiler(
                suite_program(name, scale=scale),
                profile=ProfileMeConfig(mean_interval=5_000, seed=7),
                collect_truth=False)
            start = time.perf_counter()
            run = profiler.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, run)
        wall, run = best
        rows[label] = {
            "cycles": 0,  # the interpreter has no cycle axis
            "retired": run.retired,
            "samples": run.database.total_samples,
            "wall_s": round(wall, 6),
            "cycles_per_sec": 0,
            "retired_per_sec": int(run.retired / wall) if wall else 0,
        }
    return rows


def run_bench(quick=False, repeats=None, progress=None):
    """Run the pinned benchmark matrix; returns the result document."""
    if repeats is None:
        repeats = 1 if quick else 3
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    scale = 1
    results = {"ooo": {}, "inorder": {}, "smt": {}}

    programs = {}
    for name, wl_scale in workloads:
        programs[(name, wl_scale)] = suite_program(name, scale=wl_scale)
    for kind in ("ooo", "inorder"):
        for name, wl_scale in workloads:
            label = "%s@%d" % (name, wl_scale)
            if progress:
                progress("%s/%s" % (kind, label))
            spec = SessionSpec(program=programs[(name, wl_scale)],
                               core_kind=kind)
            results[kind][label] = _measure(spec, repeats)

    pair_label = "+".join(SMT_PAIR)
    if progress:
        progress("smt/%s" % pair_label)
    smt_programs = tuple(suite_program(name, scale=scale)
                         for name in SMT_PAIR)
    smt_spec = SessionSpec(programs=smt_programs, core_kind="smt",
                           max_cycles=SMT_MAX_CYCLES)
    results["smt"][pair_label] = _measure(smt_spec, repeats)

    results["interpreter"] = _measure_interpreter(quick, repeats, progress)
    results["twospeed"] = _measure_twospeed(quick, progress)

    return {
        "kind": BENCH_KIND,
        "version": BENCH_VERSION,
        "quick": bool(quick),
        "repeats": repeats,
        "git_rev": git_revision(),
        "machine": machine_info(),
        "results": results,
    }


def load_document(path):
    with open(path) as stream:
        document = json.load(stream)
    if document.get("kind") != BENCH_KIND:
        raise ValueError("%s is not a %s document" % (path, BENCH_KIND))
    return document


def save_document(document, path):
    with open(path, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def diff_lines(baseline, current):
    """Human-readable comparison of two bench documents.

    Returns (lines, simulation_changed): cycle-count mismatches mean
    the simulated machine behaves differently (the cycle-exactness
    guard), while throughput deltas are hardware-plus-code speed.
    """
    lines = []
    simulation_changed = False
    # Cycle counts compare across flavours (same workload label means
    # the same simulated work), but best-of-N wall-clock only compares
    # within the same flavour.
    same_flavour = baseline.get("quick") == current.get("quick")
    if not same_flavour:
        lines.append("baseline is a %s run, current is a %s run — "
                     "comparing cycle counts only"
                     % ("quick" if baseline.get("quick") else "full",
                        "quick" if current.get("quick") else "full"))
    base_rev = baseline.get("git_rev", "?")
    base_results = baseline.get("results", {})
    for kind in sorted(current.get("results", {})):
        for label, entry in sorted(current["results"][kind].items()):
            base = base_results.get(kind, {}).get(label)
            if base is None:
                lines.append("%s/%s: no baseline entry" % (kind, label))
                continue
            if base["cycles"] != entry["cycles"]:
                simulation_changed = True
                lines.append(
                    "%s/%s: SIMULATION CHANGED — %d cycles vs %d in "
                    "baseline %s" % (kind, label, entry["cycles"],
                                     base["cycles"], base_rev))
                continue
            if ("retired" in base and "retired" in entry
                    and base["retired"] != entry["retired"]):
                # Retired counts are deterministic even for rows with
                # no cycle axis (the interpreter rows); a drift means
                # the simulated program ran differently.
                simulation_changed = True
                lines.append(
                    "%s/%s: SIMULATION CHANGED — %d retired vs %d in "
                    "baseline %s" % (kind, label, entry["retired"],
                                     base["retired"], base_rev))
                continue
            if ("samples" in base and "samples" in entry
                    and base["samples"] != entry["samples"]):
                # Sampled runs are deterministic: a moving sample count
                # means the sampling (or two-speed window placement)
                # behavior changed, even with matching cycle counts.
                simulation_changed = True
                lines.append(
                    "%s/%s: SAMPLE ESTIMATE DRIFT — %d samples vs %d in "
                    "baseline %s" % (kind, label, entry["samples"],
                                     base["samples"], base_rev))
                continue
            # Rows without a cycle axis (interpreter) report retired
            # instr/s as their throughput instead.
            unit = "cycles/s" if entry.get("cycles_per_sec") else "instr/s"
            base_rate = (base.get("cycles_per_sec")
                         or base.get("retired_per_sec", 0))
            rate = (entry.get("cycles_per_sec")
                    or entry.get("retired_per_sec", 0))
            if same_flavour and base_rate:
                delta = 100.0 * (rate - base_rate) / base_rate
                lines.append("%s/%s: %d %s (%+.1f%% vs %s)"
                             % (kind, label, rate, unit, delta, base_rev))
            else:
                lines.append("%s/%s: %d %s, cycles match %s"
                             % (kind, label, rate, unit, base_rev))
    return lines, simulation_changed
