"""Time-multiplexed event counters (the other section 2.2 weakness).

"There are typically many more events of interest than there are hardware
counters, making it impossible to concurrently monitor all interesting
events."  The standard workaround — rotating event selections through the
few physical counters and scaling each count by its duty cycle — assumes
event rates are stationary.  Phased programs violate that: an event
concentrated in a phase that a counter happens to miss (or double-sees)
is under- or over-estimated, and correlations between events are lost
entirely.

:class:`MultiplexedCounters` models an N-counter file rotated across K
event kinds every ``rotation_cycles`` cycles.  ProfileMe needs no such
machinery: every sample carries the complete event bit-field, so one run
estimates every event at once with correlations intact.
"""

from dataclasses import dataclass
from typing import List

from repro.counters.counter import (_FETCH_EVENTS, _ISSUE_EVENTS,
                                    _RETIRE_EVENTS, CounterEvent)
from repro.cpu.probes import Probe, SLOT_INST
from repro.errors import ConfigError


@dataclass(frozen=True)
class MultiplexConfig:
    """A counter file smaller than the event list it must cover."""

    events: tuple  # CounterEvent kinds to monitor
    physical_counters: int = 2
    rotation_cycles: int = 1000

    def __post_init__(self):
        if not self.events:
            raise ConfigError("need at least one event")
        if self.physical_counters < 1:
            raise ConfigError("need at least one physical counter")
        if self.rotation_cycles < 1:
            raise ConfigError("rotation quantum must be >= 1")
        if len(set(self.events)) != len(self.events):
            raise ConfigError("duplicate events")

    @property
    def fully_covered(self):
        return self.physical_counters >= len(self.events)


class MultiplexedCounters(Probe):
    """Rotating counter file: counts only currently-scheduled events."""

    def __init__(self, config):
        self.config = config
        self.counts = {event: 0 for event in config.events}
        self.active_cycles = {event: 0 for event in config.events}
        self.total_cycles = 0
        self._slot = 0
        self._active = self._schedule(0)

    def _schedule(self, slot):
        """Which events the physical counters watch during *slot*."""
        events = self.config.events
        n = self.config.physical_counters
        if self.config.fully_covered:
            return set(events)
        start = (slot * n) % len(events)
        chosen = [events[(start + k) % len(events)] for k in range(n)]
        return set(chosen)

    # ------------------------------------------------------------------

    def _count(self, event_kind):
        if event_kind in self._active:
            self.counts[event_kind] += 1

    def on_fetch_slots(self, cycle, slots):
        for event_kind, predicate in _FETCH_EVENTS.items():
            if event_kind in self._active and event_kind in self.counts:
                for slot in slots:
                    if slot.kind == SLOT_INST and predicate(slot.dyninst):
                        self.counts[event_kind] += 1

    def on_issue(self, dyninst, cycle):
        for event_kind, predicate in _ISSUE_EVENTS.items():
            if event_kind in self.counts and predicate(dyninst):
                self._count(event_kind)

    def on_retire(self, dyninst, cycle):
        for event_kind, predicate in _RETIRE_EVENTS.items():
            if event_kind in self.counts and predicate(dyninst):
                self._count(event_kind)

    def on_cycle_end(self, cycle):
        self.total_cycles += 1
        for event_kind in self._active:
            if event_kind in self.active_cycles:
                self.active_cycles[event_kind] += 1
        slot = cycle // self.config.rotation_cycles
        if slot != self._slot:
            self._slot = slot
            self._active = self._schedule(slot)

    # ------------------------------------------------------------------

    def estimate(self, event_kind):
        """Duty-cycle-scaled estimate of the event's true total."""
        active = self.active_cycles[event_kind]
        if active == 0:
            return 0.0
        duty = active / max(1, self.total_cycles)
        return self.counts[event_kind] / duty

    def estimates(self):
        return {event: self.estimate(event) for event in self.config.events}

    def register_probes(self, registry, prefix="counters.multiplex"):
        """Expose per-event raw counts, duty cycles, and estimates."""
        registry.register(prefix + ".total_cycles",
                          lambda: self.total_cycles,
                          kind="counter", unit="cycles",
                          description="cycles the counter file has run")
        for event in self.config.events:
            base = "%s.%s" % (prefix, event.value)
            registry.register(base + ".count",
                              lambda e=event: self.counts[e],
                              kind="counter", unit="events",
                              description="raw count while scheduled")
            registry.register(base + ".active_cycles",
                              lambda e=event: self.active_cycles[e],
                              kind="counter", unit="cycles",
                              description="cycles a physical counter "
                                          "watched this event")
            registry.register(base + ".estimate",
                              lambda e=event: self.estimate(e),
                              kind="gauge", unit="events",
                              description="duty-cycle-scaled total estimate")
