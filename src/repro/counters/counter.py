"""Hardware event counters with overflow interrupts: the baseline.

This models the performance-counter style of the Alpha 21164 / Pentium Pro
/ R10000 that section 2.2 critiques.  A counter counts occurrences of one
event kind; when it overflows, an interrupt is *armed*, becomes
deliverable after a pipeline-dependent ``skid`` delay, and the PC the
handler observes is the next instruction to retire at or after delivery
(optionally deferred past uninterruptible PC ranges — the paper's "blind
spots").

On the in-order core this yields a sharp peak at a fixed offset from the
event-causing instruction; on the out-of-order core, retirement burstiness
and out-of-order completion smear the delivered PCs over tens of
instructions (Figure 2).  Because the simulator knows the true causing
instruction, each delivered sample also carries ``event_pc`` ground truth
so the attribution error is directly measurable.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.cpu.probes import Probe, SLOT_INST
from repro.errors import ConfigError
from repro.events import Event
from repro.utils.rng import SamplingRng


class CounterEvent(enum.Enum):
    """Event kinds a counter can be programmed to count."""

    DCACHE_REF = "dcache_ref"  # load/store issued
    DCACHE_MISS = "dcache_miss"
    ICACHE_MISS = "icache_miss"
    DTB_MISS = "dtb_miss"
    BRANCH_MISPREDICT = "branch_mispredict"
    RETIRED_INST = "retired_inst"


# Where in the pipeline each event kind is observed.
_ISSUE_EVENTS = {
    CounterEvent.DCACHE_REF: lambda d: d.inst.is_memory,
    CounterEvent.DCACHE_MISS: lambda d: bool(d.events & Event.DCACHE_MISS)
    and d.inst.is_memory,
    CounterEvent.DTB_MISS: lambda d: bool(d.events & Event.DTB_MISS)
    and d.inst.is_memory,
}
_FETCH_EVENTS = {
    CounterEvent.ICACHE_MISS: lambda d: bool(d.events & Event.ICACHE_MISS),
}
_RETIRE_EVENTS = {
    CounterEvent.BRANCH_MISPREDICT:
        lambda d: bool(d.events & Event.MISPREDICT),
    CounterEvent.RETIRED_INST: lambda d: True,
}


@dataclass(frozen=True)
class CounterSample:
    """One delivered performance-counter interrupt."""

    delivered_pc: int  # what the handler sees (the "exception PC")
    delivered_cycle: int
    event_pc: int  # ground truth: the instruction that caused the event
    event_cycle: int


@dataclass(frozen=True)
class CounterConfig:
    """Programming of one event counter."""

    event: CounterEvent
    period: int  # events between overflows (mean; randomized per interval)
    jitter: float = 0.1
    skid_cycles: int = 6  # overflow -> interrupt-deliverable delay
    skid_jitter_cycles: int = 0  # uniform extra delivery latency [0, J]
    seed: int = 7

    def __post_init__(self):
        if self.period < 1:
            raise ConfigError("counter period must be >= 1")
        if self.skid_cycles < 0:
            raise ConfigError("skid must be >= 0")
        if self.skid_jitter_cycles < 0:
            raise ConfigError("skid jitter must be >= 0")


class EventCounter(Probe):
    """One programmed counter attached to a core.

    ``uninterruptible`` is an optional list of (start_pc, end_pc) byte
    ranges; while the next-to-retire PC is inside such a range the
    interrupt stays pending — deliveries pile up on the first instruction
    after the range, reproducing section 2.2's blind spots.
    """

    def __init__(self, config, uninterruptible=None):
        self.config = config
        self.rng = SamplingRng(config.seed)
        self.samples = []
        self.events_counted = 0
        self.overflows = 0
        self.uninterruptible = list(uninterruptible or [])

        self._remaining = self.rng.interval(config.period, config.jitter)
        self._pending = None  # (deliverable_cycle, event_pc, event_cycle)

    # ------------------------------------------------------------------

    def _blocked(self, pc):
        for start, end in self.uninterruptible:
            if start <= pc < end:
                return True
        return False

    def _count(self, dyninst, cycle):
        self.events_counted += 1
        self._remaining -= 1
        if self._remaining > 0:
            return
        self.overflows += 1
        self._remaining = self.rng.interval(self.config.period,
                                            self.config.jitter)
        if self._pending is not None:
            return  # interrupt already pending: this overflow is lost
        # The 21164 delivers its counter interrupt a fixed number of
        # cycles after the event; P6-class machines recognize the PMI
        # through the local APIC with a latency that varies by several
        # cycles run to run.  skid_jitter_cycles models that variability.
        skid = self.config.skid_cycles
        if self.config.skid_jitter_cycles:
            skid += self.rng.randint(0, self.config.skid_jitter_cycles)
        self._pending = (cycle + skid, dyninst.pc, cycle)

    # ------------------------------------------------------------------
    # Introspection.

    def register_probes(self, registry, prefix="counters"):
        """Expose this counter under ``counters.<event>.*``."""
        base = "%s.%s" % (prefix, self.config.event.value)
        registry.register(base + ".events_counted",
                          lambda: self.events_counted,
                          kind="counter", unit="events",
                          description="events observed by the counter")
        registry.register(base + ".overflows",
                          lambda: self.overflows,
                          kind="counter", unit="overflows",
                          description="counter overflow interrupts armed")
        registry.register(base + ".samples",
                          lambda: len(self.samples),
                          kind="counter", unit="samples",
                          description="interrupts actually delivered")
        registry.register(base + ".pending",
                          lambda: int(self._pending is not None),
                          kind="gauge", unit="bool",
                          description="1 while an interrupt awaits delivery")

    # ------------------------------------------------------------------
    # Probe callbacks.

    def on_fetch_slots(self, cycle, slots):
        predicate = _FETCH_EVENTS.get(self.config.event)
        if predicate is None:
            return
        for slot in slots:
            if slot.kind == SLOT_INST and predicate(slot.dyninst):
                self._count(slot.dyninst, cycle)

    def on_issue(self, dyninst, cycle):
        predicate = _ISSUE_EVENTS.get(self.config.event)
        if predicate is not None and predicate(dyninst):
            self._count(dyninst, cycle)

    def on_retire(self, dyninst, cycle):
        predicate = _RETIRE_EVENTS.get(self.config.event)
        if predicate is not None and predicate(dyninst):
            self._count(dyninst, cycle)
        # Interrupt delivery: the handler's PC is the next instruction to
        # retire once the interrupt is deliverable and not blocked.
        if self._pending is None:
            return
        deliverable_cycle, event_pc, event_cycle = self._pending
        if cycle < deliverable_cycle:
            return
        if self._blocked(dyninst.pc):
            return
        self.samples.append(CounterSample(
            delivered_pc=dyninst.pc,
            delivered_cycle=cycle,
            event_pc=event_pc,
            event_cycle=event_cycle,
        ))
        self._pending = None
