"""Event-counter baseline hardware (section 2.2)."""

from repro.counters.counter import (CounterConfig, CounterEvent,
                                    CounterSample, EventCounter)
from repro.counters.multiplex import MultiplexConfig, MultiplexedCounters

__all__ = [
    "CounterConfig",
    "CounterEvent",
    "CounterSample",
    "EventCounter",
    "MultiplexConfig",
    "MultiplexedCounters",
]
