"""Profile aggregation by program structure (section 3).

"Aggregate information, summarizing performance statistics over an
entire workload, an individual program, a procedure, or a smaller unit
such as a loop."  Per-PC profiles roll up losslessly:

* :func:`by_function` — samples, retire/abort split, event counts and
  estimated in-progress cycles per declared function;
* :func:`by_loop` — the same per natural loop (innermost attribution),
  using :mod:`repro.isa.loops`;
* :func:`hierarchy_report` — a text drill-down: program -> function ->
  loop, ranked by estimated cycles.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.reports import format_table
from repro.events import Event
from repro.isa.loops import find_loops, loop_of_pc


@dataclass
class UnitSummary:
    """Aggregated profile for one program unit (function or loop)."""

    name: str
    samples: int = 0
    retired: int = 0
    aborted: int = 0
    dcache_misses: int = 0
    icache_misses: int = 0
    mispredicts: int = 0
    latency_sum: int = 0  # sampled in-progress cycles (chain sums)

    def absorb(self, profile):
        self.samples += profile.samples
        self.retired += profile.event_count(Event.RETIRED)
        self.aborted += profile.event_count(Event.ABORTED)
        self.dcache_misses += profile.event_count(Event.DCACHE_MISS)
        self.icache_misses += profile.event_count(Event.ICACHE_MISS)
        self.mispredicts += profile.event_count(Event.MISPREDICT)
        for register in ("fetch_to_map", "map_to_data_ready",
                         "data_ready_to_issue", "issue_to_retire_ready"):
            self.latency_sum += profile.latency(register).total

    def estimated_cycles(self, mean_interval):
        return self.latency_sum * mean_interval


def by_function(database, program):
    """UnitSummary per declared function (plus '<outside>' if needed)."""
    summaries: Dict[str, UnitSummary] = {}
    for pc, profile in database.per_pc.items():
        name = program.function_of_pc(pc) or "<outside>"
        summary = summaries.get(name)
        if summary is None:
            summary = UnitSummary(name=name)
            summaries[name] = summary
        summary.absorb(profile)
    return summaries


def by_loop(database, program, loops=None):
    """UnitSummary per natural loop (innermost attribution).

    PCs outside any loop aggregate under '<function>/straightline'.
    """
    loops = loops if loops is not None else find_loops(program)
    summaries: Dict[str, UnitSummary] = {}
    for pc, profile in database.per_pc.items():
        loop = loop_of_pc(loops, pc)
        if loop is not None:
            name = "%s/loop@%#x" % (loop.function, loop.header)
        else:
            function = program.function_of_pc(pc) or "<outside>"
            name = "%s/straightline" % function
        summary = summaries.get(name)
        if summary is None:
            summary = UnitSummary(name=name)
            summaries[name] = summary
        summary.absorb(profile)
    return summaries


def hierarchy_report(database, program, mean_interval, limit=12):
    """Text drill-down ranked by estimated in-progress cycles."""
    functions = by_function(database, program)
    loops = by_loop(database, program)

    rows = []
    for summary in sorted(functions.values(),
                          key=lambda s: -s.latency_sum)[:limit]:
        rows.append([summary.name, summary.samples,
                     "%.0f" % summary.estimated_cycles(mean_interval),
                     summary.dcache_misses, summary.mispredicts,
                     summary.aborted])
    text = [format_table(
        ["function", "samples", "est. cycles", "D-miss", "mispred",
         "aborted"], rows, title="By function")]

    rows = []
    for summary in sorted(loops.values(),
                          key=lambda s: -s.latency_sum)[:limit]:
        rows.append([summary.name, summary.samples,
                     "%.0f" % summary.estimated_cycles(mean_interval),
                     summary.dcache_misses, summary.mispredicts,
                     summary.aborted])
    text.append(format_table(
        ["loop", "samples", "est. cycles", "D-miss", "mispred",
         "aborted"], rows, title="By loop (innermost)"))
    return "\n\n".join(text)
