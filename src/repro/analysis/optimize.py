"""Profile-guided optimization feedback (section 7).

Section 7 sketches how ProfileMe data drives optimizers; this module
implements concrete versions of each sketch:

* **code layout** — rank functions by sampled I-cache misses and
  *actually apply* a procedure reordering (relocating functions and
  relinking direct targets), so the improvement can be measured by
  re-running the simulator;
* **load-latency classification** (Abraham & Rau) — classify loads as
  always-hit / always-miss / bimodal from the Load-issue->Completion
  latency register, yielding prefetch/scheduling candidates;
* **conflict-page report** (Bershad's CML buffer, built from ProfileMe's
  effective addresses instead of dedicated hardware) — pages ranked by
  sampled cache-miss references, with cache-set pressure, feeding a page
  recoloring policy;
* **superpage candidates** (Romer) — contiguous page runs with high
  sampled DTB-miss rates;
* **prefetch insertion** ("improved instruction scheduling ... the
  insertion of prefetches") — *actually inserts* PREFETCH instructions
  ahead of profile-identified missing loads with statically detected
  strides, relocating and relinking the program.
"""

from dataclasses import dataclass
from typing import List

from repro.errors import AnalysisError
from repro.events import Event
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.relocation import ensure_relocatable


# ----------------------------------------------------------------------
# Code layout (I-cache locality).


def function_heat(database, program, event=Event.ICACHE_MISS):
    """Sampled event counts per function, descending."""
    heat = {}
    for pc, profile in database.per_pc.items():
        name = program.function_of_pc(pc)
        if name is None:
            continue
        heat[name] = heat.get(name, 0) + profile.event_count(event)
    return sorted(heat.items(), key=lambda item: item[1], reverse=True)


def reorder_functions(program, order):
    """Relocate whole functions into *order* and relink direct targets.

    Convenience wrapper over :func:`reorder_functions_with_map` that
    drops the PC remapping.
    """
    return reorder_functions_with_map(program, order)[0]


def reorder_functions_with_map(program, order):
    """Relocate whole functions into *order*; return ``(program, remap)``.

    *remap* maps every old instruction PC to its new PC, so planned
    transformations computed against the original program (prefetch
    plans, branch hints) can be carried across the relocation — the PGO
    pass manager chains these maps between passes.

    Functions not named keep their relative order after the named ones.
    Instructions outside any function are not supported (the workload
    builders in this package put all code in functions).

    Constraint: address computations through data memory (jump tables)
    are not relinked; programs using JMP must not be reordered (a typed
    :class:`~repro.errors.RelocationError` names the offending PCs).
    RET is safe (return addresses are produced at run time by the
    relocated JSR).
    """
    ensure_relocatable(program, operation="reorder functions of")
    extents = dict(program.functions)
    if set(order) - set(extents):
        raise AnalysisError("unknown functions in order: %r"
                            % (sorted(set(order) - set(extents)),))
    covered = sorted(extents.values())
    cursor = 0
    for start, end in covered:
        if start != cursor:
            raise AnalysisError("program has code outside functions; "
                                "cannot relocate")
        cursor = end
    if cursor != program.pc_limit:
        raise AnalysisError("program has trailing code outside functions")

    full_order = list(order)
    for name, (start, _) in sorted(extents.items(), key=lambda kv: kv[1][0]):
        if name not in full_order:
            full_order.append(name)

    # Build the PC remapping.
    remap = {}
    new_functions = {}
    cursor = 0
    for name in full_order:
        start, end = extents[name]
        new_functions[name] = (cursor, cursor + (end - start))
        for old_pc in range(start, end, INSTRUCTION_BYTES):
            remap[old_pc] = cursor + (old_pc - start)
        cursor += end - start

    new_instructions = [None] * len(program.instructions)
    for old_pc, new_pc in remap.items():
        inst = program.instructions[old_pc // INSTRUCTION_BYTES]
        if inst.target is not None:
            inst = Instruction(op=inst.op, dest=inst.dest, src1=inst.src1,
                               src2=inst.src2, imm=inst.imm,
                               target=remap[inst.target])
        new_instructions[new_pc // INSTRUCTION_BYTES] = inst

    new_labels = {name: remap[pc] for name, pc in program.labels.items()
                  if pc in remap}
    remap[program.pc_limit] = cursor  # one-past-the-end, for chaining
    relocated = Program(instructions=new_instructions, labels=new_labels,
                        initial_memory=dict(program.initial_memory),
                        entry=remap[program.entry],
                        name=program.name + "+layout",
                        functions=new_functions)
    return relocated, remap


def layout_order_from_profile(database, program):
    """Hot-first function order: the classic greedy placement."""
    ranked = function_heat(database, program, event=Event.ICACHE_MISS)
    by_samples = function_heat(database, program, event=Event.RETIRED)
    heat = {name: count for name, count in ranked}
    order = sorted(
        program.functions,
        key=lambda name: (heat.get(name, 0),
                          dict(by_samples).get(name, 0)),
        reverse=True)
    return order


# ----------------------------------------------------------------------
# Generic instruction insertion (relocation + relink).


def insert_instructions(program, insertions):
    """Insert instructions after given PCs, relocating the program.

    Convenience wrapper over :func:`insert_instructions_with_map` that
    drops the PC remapping.
    """
    return insert_instructions_with_map(program, insertions)[0]


def insert_instructions_with_map(program, insertions):
    """Insert instructions after given PCs; return ``(program, remap)``.

    *insertions* maps ``old_pc -> [Instruction, ...]`` (inserted
    immediately after that instruction).  Direct branch targets, labels,
    function extents and the entry point are remapped; *remap* maps
    every old instruction PC (plus the one-past-the-end ``pc_limit``) to
    its new address, for chaining with other planned transformations.
    Programs with indirect jumps (JMP) cannot be relocated (their jump
    tables hold absolute addresses; a typed
    :class:`~repro.errors.RelocationError` names the offending PCs).

    All insertions for one program must go through a *single* call:
    every ``old_pc`` is interpreted against *program* as given, so
    applying two plans in two calls would aim the second plan at PCs the
    first call already shifted.
    """
    ensure_relocatable(program, operation="insert instructions into")
    for pc in insertions:
        if not program.contains_pc(pc):
            raise AnalysisError("insertion point %#x is not a valid PC" % pc)

    remap = {}
    new_sequence = []  # (old_pc or None, Instruction)
    cursor = 0
    for index, inst in enumerate(program.instructions):
        old_pc = index * INSTRUCTION_BYTES
        remap[old_pc] = cursor
        new_sequence.append((old_pc, inst))
        cursor += INSTRUCTION_BYTES
        for extra in insertions.get(old_pc, ()):
            new_sequence.append((None, extra))
            cursor += INSTRUCTION_BYTES
    remap[program.pc_limit] = cursor  # one-past-the-end, for extents

    new_instructions = []
    for old_pc, inst in new_sequence:
        if inst.target is not None:
            if inst.target not in remap:
                raise AnalysisError("unmappable branch target %#x"
                                    % inst.target)
            inst = Instruction(op=inst.op, dest=inst.dest, src1=inst.src1,
                               src2=inst.src2, imm=inst.imm,
                               target=remap[inst.target])
        new_instructions.append(inst)

    new_labels = {name: remap[pc] for name, pc in program.labels.items()}
    new_functions = {name: (remap[start], remap[end])
                     for name, (start, end) in program.functions.items()}
    relocated = Program(instructions=new_instructions, labels=new_labels,
                        initial_memory=dict(program.initial_memory),
                        entry=remap[program.entry],
                        name=program.name + "+insert",
                        functions=new_functions)
    return relocated, remap


# ----------------------------------------------------------------------
# Prefetch insertion (Abraham & Rau-guided scheduling).


@dataclass(frozen=True)
class PrefetchPlan:
    """One planned prefetch."""

    load_pc: int
    base_reg: int
    displacement: int  # prefetch displacement (load imm + lookahead)
    stride: int
    miss_fraction: float


def detect_stride(program, load_pc):
    """Statically detect the loop stride of a load's base register.

    Looks for a unique ``lda base, base, K`` updater within the load's
    enclosing function — the common strided-loop idiom.  Returns K or
    None when no unique updater exists.
    """
    inst = program.fetch(load_pc)
    base = inst.src1
    extent = None
    name = program.function_of_pc(load_pc)
    if name is not None:
        extent = program.functions[name]
    else:
        extent = (0, program.pc_limit)
    strides = []
    for pc in range(extent[0], extent[1], INSTRUCTION_BYTES):
        candidate = program.fetch(pc)
        if (candidate.op is Opcode.LDA and candidate.dest == base
                and candidate.src1 == base and candidate.imm != 0):
            strides.append(candidate.imm)
    if len(strides) == 1:
        return strides[0]
    return None


def plan_prefetches(program, database, lookahead=6, miss_threshold=0.4,
                    min_samples=5):
    """Choose prefetches from the sampled load-miss profile.

    Loads whose sampled D-cache miss fraction exceeds *miss_threshold*
    and whose base register has a statically detectable stride get a
    PREFETCH at ``base + imm + lookahead * stride``.
    """
    plans = []
    for load in classify_loads(database, min_samples=min_samples):
        if load.miss_fraction < miss_threshold:
            continue
        if not program.contains_pc(load.pc):
            continue
        inst = program.fetch(load.pc)
        if not inst.is_load:
            continue
        stride = detect_stride(program, load.pc)
        if stride is None:
            continue
        plans.append(PrefetchPlan(
            load_pc=load.pc,
            base_reg=inst.src1,
            displacement=inst.imm + lookahead * stride,
            stride=stride,
            miss_fraction=load.miss_fraction,
        ))
    return plans


def insert_prefetches(program, plans):
    """Apply :func:`plan_prefetches` output; returns the new program."""
    return insert_prefetches_with_map(program, plans)[0]


def insert_prefetches_with_map(program, plans):
    """Apply prefetch plans in one relocation; return ``(program, remap)``.

    Every plan must have been computed against *program* as given: the
    plan's ``load_pc`` is validated to still address the load it was
    planned for (a load with the plan's base register).  A stale plan —
    typically one computed before an earlier relocation shifted the
    program — raises a typed :class:`~repro.errors.AnalysisError`
    instead of silently landing a prefetch at whatever instruction now
    occupies the old offset.  All plans are applied through a single
    :func:`insert_instructions_with_map` call so several plans for one
    function (or one load) can never invalidate each other's offsets.
    """
    insertions = {}
    for plan in plans:
        if not program.contains_pc(plan.load_pc):
            raise AnalysisError(
                "stale prefetch plan: %#x is not a valid PC in %r "
                "(plan computed against a different program image?)"
                % (plan.load_pc, program.name))
        inst = program.fetch(plan.load_pc)
        if not inst.is_load or inst.src1 != plan.base_reg:
            raise AnalysisError(
                "stale prefetch plan: instruction at %#x in %r is %r, "
                "not a load with base register r%d (plan computed "
                "against a different program image?)"
                % (plan.load_pc, program.name, inst.disassemble(),
                   plan.base_reg))
        prefetch = Instruction(op=Opcode.PREFETCH, src1=plan.base_reg,
                               imm=plan.displacement)
        queued = insertions.setdefault(plan.load_pc, [])
        if prefetch not in queued:  # identical duplicate plans fold
            queued.append(prefetch)
    return insert_instructions_with_map(program, insertions)


# ----------------------------------------------------------------------
# Profile-guided static branch hints (Young & Smith-style).


def branch_hints_from_profile(database, program, min_samples=4):
    """Per-branch static hint bits from the sampled direction profile.

    Returns ``pc -> predicted_taken`` for conditional branches with at
    least *min_samples* retired samples; feed it to
    :class:`repro.branch.predictors.StaticDirectionPredictor`.
    """
    hints = {}
    for pc, profile in database.per_pc.items():
        if not program.contains_pc(pc):
            continue
        if not program.fetch(pc).is_conditional:
            continue
        retired = profile.event_count(Event.RETIRED)
        if retired < min_samples:
            continue
        hints[pc] = profile.taken_count * 2 >= retired
    return hints


# ----------------------------------------------------------------------
# Load-latency classification (Abraham & Rau).


@dataclass(frozen=True)
class LoadClass:
    """Classification of one static load."""

    pc: int
    samples: int
    miss_fraction: float
    mean_latency: float
    category: str  # "hit", "miss", "bimodal"


def classify_loads(database, hit_threshold=0.1, miss_threshold=0.9,
                   min_samples=5) -> List[LoadClass]:
    """Classify loads by sampled D-cache miss behaviour.

    "hit" loads can be scheduled with the cache-hit latency, "miss" loads
    deserve prefetches or early scheduling, and "bimodal" loads are
    candidates for the path-correlation analysis of Luk & Mowry.
    """
    classes = []
    for pc, profile in database.per_pc.items():
        latency = profile.latency("load_issue_to_completion")
        if latency.count < min_samples:
            continue
        memory_samples = latency.count
        misses = profile.event_count(Event.DCACHE_MISS)
        fraction = misses / memory_samples
        if fraction <= hit_threshold:
            category = "hit"
        elif fraction >= miss_threshold:
            category = "miss"
        else:
            category = "bimodal"
        classes.append(LoadClass(pc=pc, samples=memory_samples,
                                 miss_fraction=fraction,
                                 mean_latency=latency.mean,
                                 category=category))
    classes.sort(key=lambda c: c.miss_fraction, reverse=True)
    return classes


# ----------------------------------------------------------------------
# Page-level memory placement (CML buffer / superpages).


@dataclass(frozen=True)
class PageReport:
    """Sampled memory behaviour of one virtual page."""

    page: int
    references: int
    dcache_misses: int
    dtb_misses: int


def page_reports(database, page_bytes=8192) -> List[PageReport]:
    """Aggregate sampled effective addresses into per-page miss reports.

    Requires the database to retain addresses (``keep_addresses > 0``).
    This is the CML-buffer equivalent the paper promises: "capturing the
    virtual addresses of memory references that miss in the cache or TLB
    ... without additional hardware complexity".
    """
    pages = {}
    for profile in database.per_pc.values():
        for addr, dmiss, tmiss in profile.addresses:
            page = addr // page_bytes
            stats = pages.get(page)
            if stats is None:
                stats = [0, 0, 0]
                pages[page] = stats
            stats[0] += 1
            if dmiss:
                stats[1] += 1
            if tmiss:
                stats[2] += 1
    reports = [PageReport(page=page, references=s[0], dcache_misses=s[1],
                          dtb_misses=s[2])
               for page, s in pages.items()]
    reports.sort(key=lambda r: r.dcache_misses, reverse=True)
    return reports


def superpage_candidates(reports, min_run=2, min_dtb_misses=1):
    """Contiguous page runs worth promoting to a superpage.

    Returns [(first_page, page_count, total_dtb_misses)] for runs of at
    least *min_run* consecutive pages that each suffered DTB misses.
    """
    hot = sorted(r.page for r in reports if r.dtb_misses >= min_dtb_misses)
    by_page = {r.page: r for r in reports}
    candidates = []
    i = 0
    while i < len(hot):
        j = i
        while j + 1 < len(hot) and hot[j + 1] == hot[j] + 1:
            j += 1
        if j - i + 1 >= min_run:
            pages = hot[i:j + 1]
            total = sum(by_page[p].dtb_misses for p in pages)
            candidates.append((pages[0], len(pages), total))
        i = j + 1
    candidates.sort(key=lambda c: c[2], reverse=True)
    return candidates
