"""Statistical pipeline-state reconstruction from paired samples.

Section 5.2 suggests that "it may be possible to statistically
reconstruct detailed processor pipeline states from paired samples", and
section 5.2.4 sketches per-stage utilization metrics ("the average
utilization of a particular functional unit while I was in a given
pipeline stage").  This module implements both:

* :class:`PipelineStateEstimator` — accumulates, from every usable pair,
  which pipeline stage the *partner* occupied at each cycle offset
  relative to the anchor's fetch.  The normalized result approximates
  the probability of finding a concurrent instruction in a given stage
  k cycles after a random instruction is fetched — a statistical
  snapshot of pipeline occupancy around typical instructions.
* :func:`conditional_concurrency` — the paper's clustering example:
  compare useful-concurrency levels when the anchor hit vs missed in the
  D-cache (or any other event predicate).

All inputs are architecturally observable: latency registers plus the
intra-pair fetch latency.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.concurrency import (PairTimeline, stage_times,
                                        useful_overlap)
from repro.errors import AnalysisError
from repro.events import Event
from repro.profileme.registers import GroupRecord, PairedRecord

# Pipeline stages a partner can occupy at a given cycle, derived from its
# stage boundary times (in pipeline order).
STAGES = ("frontend", "queue", "execute", "waiting_retire")


def stage_at(times, cycle):
    """Which stage the instruction occupies at *cycle*, or None.

    frontend: [fetch, data_ready)   (fetch/map plus operand wait)
    queue:    [data_ready, issue)   (data-ready, contending for an FU)
    execute:  [issue, retire_ready)
    waiting_retire: [retire_ready, retire)
    """
    if cycle < times.fetch:
        return None
    boundaries = (
        ("frontend", times.data_ready),
        ("queue", times.issue),
        ("execute", times.retire_ready),
        ("waiting_retire", times.retire),
    )
    for stage, end in boundaries:
        if end is None:
            return None  # the instruction never got this far
        if cycle < end:
            return stage
    return None


class PipelineStateEstimator:
    """Occupancy histogram: stage x cycle-offset, from paired samples."""

    def __init__(self, max_offset=64):
        if max_offset < 1:
            raise AnalysisError("max_offset must be >= 1")
        self.max_offset = max_offset
        # stage -> [count per offset 0..max_offset-1]
        self.occupancy = {stage: [0] * max_offset for stage in STAGES}
        self.anchors = 0

    def add(self, sample):
        """Fold one paired/N-way sample in (other types are ignored)."""
        if isinstance(sample, GroupRecord):
            for earlier, later, offset in sample.member_pairs():
                self.add(PairedRecord(first=earlier, second=later,
                                      intra_pair_cycles=offset,
                                      intra_pair_distance=None))
            return
        if not isinstance(sample, PairedRecord) or not sample.complete:
            return
        if sample.intra_pair_cycles is None:
            return
        timeline = PairTimeline(sample)
        for record, times, other_record, other_times in timeline.members():
            self.anchors += 1
            base = times.fetch
            for offset in range(self.max_offset):
                stage = stage_at(other_times, base + offset)
                if stage is not None:
                    self.occupancy[stage][offset] += 1

    def profile(self):
        """Normalized occupancy: stage -> [fraction per offset]."""
        if self.anchors == 0:
            raise AnalysisError("no pairs accumulated")
        return {
            stage: [count / self.anchors for count in counts]
            for stage, counts in self.occupancy.items()
        }

    def mean_occupancy(self, stage):
        """Average probability of finding the partner in *stage*."""
        if self.anchors == 0:
            raise AnalysisError("no pairs accumulated")
        counts = self.occupancy[stage]
        return sum(counts) / (len(counts) * self.anchors)


# ----------------------------------------------------------------------


def memory_shadow_overlap(anchor_record, anchor_times, other_record,
                          other_times):
    """Did the partner issue useful work under a load's memory shadow?

    The anchor's *memory shadow* is [issue, issue + Load-issue->Completion)
    — the interval its fill is outstanding.  On this machine (as on the
    Alpha) loads retire-ready immediately, so the plain in-progress
    interval cannot distinguish hits from misses; the shadow can, and
    "how much useful work issues under a miss's shadow" is exactly what
    prefetch/scheduling decisions need to know.
    """
    if anchor_record.load_issue_to_completion is None:
        return False
    if anchor_times.issue is None or other_times.issue is None:
        return False
    if not other_record.retired:
        return False
    start = anchor_times.issue
    end = start + anchor_record.load_issue_to_completion
    return start <= other_times.issue < end


@dataclass
class ConcurrencySplit:
    """Useful-overlap statistics for one anchor condition bucket."""

    anchors: int = 0
    useful: int = 0

    @property
    def rate(self):
        if self.anchors == 0:
            return 0.0
        return self.useful / self.anchors


def conditional_concurrency(pairs, predicate=None, pcs=None,
                            overlap=None):
    """Split useful-concurrency by an anchor condition (section 5.2.4).

    The paper: "it may be useful to compare the average concurrency level
    when instruction I hits in the cache with the concurrency level when
    I suffers a cache miss".  *predicate* maps an anchor record to a
    bucket key; the default buckets D-cache hits vs misses of memory
    operations.  *pcs* optionally restricts anchors to specific PCs.
    *overlap* chooses the overlap definition (default: the section 5.2.3
    useful overlap; :func:`memory_shadow_overlap` is the load-shadow
    variant) and receives (anchor_record, anchor_times, other_record,
    other_times).

    Returns {bucket: ConcurrencySplit}.
    """
    if overlap is None:
        def overlap(anchor_record, anchor_times, other_record, other_times):
            return useful_overlap(anchor_times, other_record, other_times)
    if predicate is None:
        def predicate(record):
            if record.op is None or record.op.value not in ("ld", "st"):
                return None
            return ("miss" if record.events & Event.DCACHE_MISS
                    else "hit")

    buckets: Dict[object, ConcurrencySplit] = {}
    for pair in pairs:
        if isinstance(pair, GroupRecord):
            members = [PairedRecord(first=a, second=b, intra_pair_cycles=o,
                                    intra_pair_distance=None)
                       for a, b, o in pair.member_pairs()]
        else:
            members = [pair]
        for member in members:
            if not isinstance(member, PairedRecord) or not member.complete:
                continue
            if member.intra_pair_cycles is None:
                continue
            timeline = PairTimeline(member)
            for record, times, other_record, other_times in \
                    timeline.members():
                if pcs is not None and record.pc not in pcs:
                    continue
                key = predicate(record)
                if key is None:
                    continue
                split = buckets.get(key)
                if split is None:
                    split = ConcurrencySplit()
                    buckets[key] = split
                split.anchors += 1
                if overlap(record, times, other_record, other_times):
                    split.useful += 1
    return buckets
