"""Dynamic stride profiling from sampled effective addresses.

The Profiled Address Register gives every memory sample an effective
address.  Even at sparse sampling rates, a strided load betrays itself:
between two samples of the same PC taken ``d`` retired instructions
apart, the address advances by ``stride * (d / loop_length)`` — so the
*address delta per retired instruction* is constant, and the per-
iteration stride follows once the loop length is known (from the CFG's
natural loops).

This powers a purely profile-driven variant of the section 7 prefetch
pass: no static induction-variable analysis, just samples — the same
way DCPI-era tools really worked on binaries.
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError
from repro.events import Event
from repro.isa.loops import find_loops, loop_of_pc


@dataclass(frozen=True)
class StrideEstimate:
    """Estimated access pattern of one static memory instruction."""

    pc: int
    samples: int
    bytes_per_instruction: float  # address slope vs retired index
    stride: Optional[int]  # per-iteration stride (needs loop context)
    confidence: float  # fraction of deltas agreeing with the median slope
    miss_fraction: float


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def estimate_strides(records, program=None, min_samples=4,
                     agreement=0.25):
    """Per-PC stride estimates from a list of ProfileRecords.

    Records must retain addresses and carry ``fetch_cycle`` as a
    monotonic instruction index (true for the functional profiler; for
    the cycle-level cores the cycle counter works equally well since
    only ratios matter).  When *program* is given, per-iteration strides
    are derived via natural-loop sizes.
    """
    by_pc = {}
    for record in records:
        if record.addr is None:
            continue
        by_pc.setdefault(record.pc, []).append(record)

    loops = find_loops(program) if program is not None else []
    estimates = []
    for pc, pc_records in by_pc.items():
        if len(pc_records) < min_samples:
            continue
        pc_records.sort(key=lambda r: r.fetch_cycle)
        slopes = []
        for earlier, later in zip(pc_records, pc_records[1:]):
            span = later.fetch_cycle - earlier.fetch_cycle
            if span <= 0:
                continue
            slopes.append((later.addr - earlier.addr) / span)
        if not slopes:
            continue
        slope = _median(slopes)
        if slope:
            agreeing = sum(1 for s in slopes
                           if abs(s - slope) <= abs(slope) * agreement)
        else:
            agreeing = sum(1 for s in slopes if s == 0)
        confidence = agreeing / len(slopes)

        stride = None
        if program is not None:
            loop = loop_of_pc(loops, pc)
            if loop is not None:
                # One loop iteration executes ~loop.size instructions
                # (straight-line body; branchy bodies make this a lower
                # bound, which rounding to a power-of-two-ish stride
                # usually survives).
                stride = int(round(slope * loop.size))
        misses = sum(1 for r in pc_records
                     if r.events & Event.DCACHE_MISS)
        estimates.append(StrideEstimate(
            pc=pc, samples=len(pc_records),
            bytes_per_instruction=slope, stride=stride,
            confidence=confidence,
            miss_fraction=misses / len(pc_records)))
    estimates.sort(key=lambda e: -e.miss_fraction)
    return estimates


def plan_prefetches_dynamic(program, records, lookahead_bytes=384,
                            min_confidence=0.6, miss_threshold=0.4,
                            min_samples=4):
    """Section 7 prefetch planning from samples alone.

    Unlike :func:`repro.analysis.optimize.plan_prefetches` (which needs
    static stride detection), this uses the sampled address slope: any
    load with a confidently linear address stream and a high miss
    fraction gets a prefetch ``lookahead_bytes`` ahead along its
    direction of travel.

    Returns :class:`repro.analysis.optimize.PrefetchPlan` objects usable
    with :func:`repro.analysis.optimize.insert_prefetches`.
    """
    from repro.analysis.optimize import PrefetchPlan

    plans = []
    for estimate in estimate_strides(records, program=program,
                                     min_samples=min_samples):
        if estimate.confidence < min_confidence:
            continue
        if estimate.miss_fraction < miss_threshold:
            continue
        if not estimate.stride:
            continue
        inst = program.fetch(estimate.pc)
        if not inst.is_load:
            continue
        direction = 1 if estimate.stride > 0 else -1
        plans.append(PrefetchPlan(
            load_pc=estimate.pc,
            base_reg=inst.src1,
            displacement=inst.imm + direction * lookahead_bytes,
            stride=estimate.stride,
            miss_fraction=estimate.miss_fraction))
    return plans
