"""Whole-program cycle accounting: "where have all the cycles gone?"

The paper's companion system DCPI [2] is titled by that question; with
ProfileMe's latency registers the answer falls out directly.  Each
sampled instruction's fetch-to-retire-ready time decomposes into the
Table 1 registers; scaling by the sampling interval attributes the
program's instruction-latency cycles to causes:

* ``frontend``       — Fetch->Map beyond the pipeline's minimum
                       (resource backpressure on fetch/map);
* ``dependences``    — Map->Data-ready beyond the minimum (waiting for
                       operands);
* ``fu_contention``  — Data-ready->Issue (ready but no unit free);
* ``execution``      — Issue->Retire-ready (the work itself);
* ``retire_wait``    — Retire-ready->Retire (in-order retirement drag;
                       reported separately since the paper's "in
                       progress" interval excludes it).

The breakdown is per static instruction and aggregates to program level,
with event annotations (what fraction of the dependence stall follows a
D-cache-missing load, etc.).
"""

from dataclasses import dataclass
from typing import Dict

from repro.errors import AnalysisError
from repro.events import Event

# Pipeline minimums on the modelled machine: one cycle of Map->Data-ready
# is pipelining, not stalling; frontend_delay cycles of Fetch->Map are
# the pipe's depth.
CATEGORIES = ("frontend", "dependences", "fu_contention", "execution",
              "retire_wait")


@dataclass
class PcCycles:
    """Estimated cycles by category for one static instruction."""

    pc: int
    samples: int
    cycles: Dict[str, float]

    @property
    def total_in_progress(self):
        return sum(self.cycles[c] for c in
                   ("frontend", "dependences", "fu_contention",
                    "execution"))


def per_pc_breakdown(database, mean_interval, frontend_depth=2):
    """Attribute estimated cycles to categories, per PC."""
    rows = []
    for pc, profile in database.per_pc.items():
        cycles = {category: 0.0 for category in CATEGORIES}
        fetch_map = profile.latency("fetch_to_map")
        if fetch_map.count:
            excess = fetch_map.total - frontend_depth * fetch_map.count
            cycles["frontend"] = max(0.0, excess) * mean_interval
        dep = profile.latency("map_to_data_ready")
        if dep.count:
            excess = dep.total - dep.count  # one cycle is pipelining
            cycles["dependences"] = max(0.0, excess) * mean_interval
        fu = profile.latency("data_ready_to_issue")
        if fu.count:
            cycles["fu_contention"] = fu.total * mean_interval
        execute = profile.latency("issue_to_retire_ready")
        if execute.count:
            cycles["execution"] = execute.total * mean_interval
        retire = profile.latency("retire_ready_to_retire")
        if retire.count:
            cycles["retire_wait"] = retire.total * mean_interval
        rows.append(PcCycles(pc=pc, samples=profile.samples, cycles=cycles))
    return rows


def program_breakdown(database, mean_interval, frontend_depth=2):
    """Aggregate category cycles over the whole profile.

    Returns (totals, fractions): absolute estimated cycles per category
    and each category's share of the in-progress total (retire_wait is
    reported but excluded from the share denominator, matching the
    paper's definition of "in progress").
    """
    rows = per_pc_breakdown(database, mean_interval, frontend_depth)
    if not rows:
        raise AnalysisError("profile database is empty")
    totals = {category: 0.0 for category in CATEGORIES}
    for row in rows:
        for category in CATEGORIES:
            totals[category] += row.cycles[category]
    in_progress = sum(totals[c] for c in CATEGORIES if c != "retire_wait")
    if in_progress <= 0:
        raise AnalysisError("no latency data in the profile")
    fractions = {c: (totals[c] / in_progress if c != "retire_wait" else None)
                 for c in CATEGORIES}
    return totals, fractions


def event_attribution(database):
    """Fraction of samples carrying each headline event.

    Pairs with the category breakdown: a large ``dependences`` share with
    high DCACHE_MISS incidence points at memory-bound dependence chains;
    with low miss incidence it points at genuine serial computation.
    """
    total = max(1, database.total_samples)
    interesting = (
        (Event.DCACHE_MISS, "dcache_miss"),
        (Event.L2_MISS, "l2_miss"),
        (Event.ICACHE_MISS, "icache_miss"),
        (Event.DTB_MISS, "dtb_miss"),
        (Event.MISPREDICT, "mispredict"),
        (Event.ABORTED, "aborted"),
        (Event.STORE_FORWARD, "store_forward"),
    )
    counts = {}
    for flag, name in interesting:
        count = sum(profile.event_count(flag)
                    for profile in database.per_pc.values())
        counts[name] = count / total
    return counts


def format_breakdown(totals, fractions, event_fractions=None):
    """Render the program-level answer as text."""
    lines = ["Where have all the cycles gone? (estimated, in-progress)"]
    for category in CATEGORIES:
        share = fractions[category]
        share_text = ("%5.1f%%" % (100 * share)) if share is not None \
            else "  --  "
        lines.append("  %-14s %12.0f cycles  %s"
                     % (category, totals[category], share_text))
    if event_fractions:
        lines.append("sample event incidence:")
        for name, fraction in sorted(event_fractions.items(),
                                     key=lambda kv: -kv[1]):
            if fraction > 0:
                lines.append("  %-14s %5.1f%% of samples"
                             % (name, 100 * fraction))
    return "\n".join(lines)
