"""Path-profile reconstruction from branch history (section 5.3, Figure 6).

Given a sampled PC and the Profiled Path Register (the directions of the
last H conditional branches), walk the CFG *backwards* enumerating path
segments consistent with the history bits.  Three schemes are compared,
exactly as in the paper:

* **execution counts** — ignore the history; at every merge point follow
  the predecessor edge with the highest profiled execution count (what a
  trace-scheduling compiler does with basic-block profiles);
* **history bits** — enumerate only paths whose conditional-branch
  directions match the captured history;
* **history bits + paired sampling** — additionally discard candidate
  paths that do not contain the PC of the other instruction in a paired
  sample taken a small, known fetch distance earlier.

A reconstruction *succeeds* when the analysis produces exactly one path
and that path is the true execution path.

Path/termination rules (shared by reconstruction and ground truth so the
comparison is exact):

* a path is a sequence of PCs ending at the sampled instruction;
* walking backwards, each conditional branch crossed consumes one history
  bit (bit 0 = most recent); the path is complete immediately after the
  H-th conditional branch is included;
* intraprocedural mode additionally completes at the enclosing function's
  entry and refuses to cross call/return boundaries;
* interprocedural mode walks through callee returns (descending into the
  callee's RETs) and through function entries (back to call sites), with
  a call-stack constraint matching returns to their call sites.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AnalysisError
from repro.isa.cfg import (CALL, RETURN, ControlFlowGraph, edge_counts,
                           observed_indirect_targets)
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode

DEFAULT_MAX_STATES = 20000
DEFAULT_MAX_PATH = 512
DEFAULT_MAX_PATHS = 64


@dataclass
class ReconstructionResult:
    """Outcome of one backward reconstruction."""

    paths: List[Tuple[int, ...]]
    exploded: bool  # search hit a resource cap; treat as failure

    @property
    def unique(self):
        return not self.exploded and len(self.paths) == 1


class PathReconstructor:
    """Backward path analysis over one program + functional trace."""

    def __init__(self, program, trace, max_states=DEFAULT_MAX_STATES,
                 max_path=DEFAULT_MAX_PATH, max_paths=DEFAULT_MAX_PATHS):
        self.program = program
        self.trace = trace
        self.cfg = ControlFlowGraph(program,
                                    observed_indirect_targets(trace))
        self.edge_counts = edge_counts(trace)
        self.max_states = max_states
        self.max_path = max_path
        self.max_paths = max_paths
        self.history_before = self._compute_histories(trace)

    @staticmethod
    def _compute_histories(trace):
        """Global branch history (as an int) before each trace index."""
        histories = []
        history = 0
        for entry in trace:
            histories.append(history)
            if entry.inst.is_conditional:
                history = ((history << 1) | (1 if entry.taken else 0))
                history &= (1 << 30) - 1
        return histories

    # ------------------------------------------------------------------
    # Ground truth.

    def actual_path(self, index, bits, interprocedural):
        """The true backward path ending at trace[*index*]."""
        trace = self.trace
        path = [trace[index].pc]
        consumed = 0
        i = index
        while True:
            cur_pc = trace[i].pc
            if not interprocedural:
                entry = self.program.function_entry(cur_pc)
                if entry == cur_pc:
                    break
            if i == 0:
                break
            pred = trace[i - 1]
            if not interprocedural and pred.inst.op in (Opcode.RET,
                                                        Opcode.JSR):
                break
            path.append(pred.pc)
            i -= 1
            if pred.inst.is_conditional:
                consumed += 1
                if consumed == bits:
                    break
            if len(path) >= self.max_path:
                break
        return tuple(reversed(path))

    # ------------------------------------------------------------------
    # History-bits enumeration.

    def consistent_paths(self, pc, history, bits, interprocedural):
        """All paths ending at *pc* consistent with *history*.

        Returns a :class:`ReconstructionResult`; ``exploded`` is set when
        a resource cap was hit (treated as reconstruction failure, the
        conservative choice).
        """
        results = []
        exploded = False
        states = 0
        # DFS over (pc, consumed_bits, reversed_path, call_stack).
        work = [(pc, 0, (pc,), ())]
        while work:
            cur_pc, consumed, rpath, stack = work.pop()
            states += 1
            if states > self.max_states or len(results) > self.max_paths:
                exploded = True
                break
            if consumed >= bits or len(rpath) >= self.max_path:
                results.append(tuple(reversed(rpath)))
                continue
            if not interprocedural:
                entry = self.program.function_entry(cur_pc)
                if entry == cur_pc:
                    results.append(tuple(reversed(rpath)))
                    continue
            edges = self.cfg.predecessors(
                cur_pc, interprocedural=interprocedural)
            if not edges:
                # A true CFG boundary (program entry, or an intraprocedural
                # call boundary): the path is complete though short.
                results.append(tuple(reversed(rpath)))
                continue
            for edge in edges:
                new_consumed = consumed
                if edge.taken_bit is not None:
                    required = (history >> consumed) & 1
                    if edge.taken_bit != required:
                        continue  # contradicts the captured history
                    new_consumed = consumed + 1
                new_stack = stack
                if edge.kind == RETURN:
                    # Descending into the callee: remember which call site
                    # the callee's entry must eventually return to.
                    new_stack = stack + (cur_pc - INSTRUCTION_BYTES,)
                elif edge.kind == CALL:
                    if stack:
                        if edge.pred != stack[-1]:
                            continue  # contradicts the call stack
                        new_stack = stack[:-1]
                work.append((edge.pred, new_consumed,
                             rpath + (edge.pred,), new_stack))
            # Predecessors existed but every edge contradicted the history
            # or the call stack: this partial path is impossible, discard.
        return ReconstructionResult(paths=results, exploded=exploded)

    # ------------------------------------------------------------------
    # Execution-counts scheme.

    def most_likely_path(self, pc, bits, interprocedural):
        """Greedy backward walk following the hottest predecessor edge."""
        rpath = [pc]
        consumed = 0
        stack = ()
        cur_pc = pc
        while consumed < bits and len(rpath) < self.max_path:
            if not interprocedural:
                entry = self.program.function_entry(cur_pc)
                if entry == cur_pc:
                    break
            expected = stack[-1] if stack else None
            edges = self.cfg.predecessors(
                cur_pc, interprocedural=interprocedural,
                expected_call_site=expected)
            if not edges:
                break
            best = max(edges,
                       key=lambda e: (self.edge_counts.get(
                           (e.pred, cur_pc), 0), -e.pred))
            if edge_is_dead(best, self.edge_counts, cur_pc):
                break
            if best.taken_bit is not None:
                consumed += 1
            if best.kind == RETURN:
                stack = stack + (cur_pc - INSTRUCTION_BYTES,)
            elif best.kind == CALL and stack:
                stack = stack[:-1]
            rpath.append(best.pred)
            cur_pc = best.pred
        return tuple(reversed(rpath))

    # ------------------------------------------------------------------
    # The three schemes, evaluated at one trace index.

    def evaluate_at(self, index, bits, interprocedural, paired_pc=None):
        """Success of each scheme for the sample at trace[*index*].

        *paired_pc* is the PC of the earlier member of a paired sample,
        or None (the paired scheme is then reported as the plain
        history-bits outcome).  Returns a dict scheme-name -> bool.
        """
        target_pc = self.trace[index].pc
        history = self.history_before[index]
        truth = self.actual_path(index, bits, interprocedural)

        likely = self.most_likely_path(target_pc, bits, interprocedural)
        counts_ok = likely == truth

        result = self.consistent_paths(target_pc, history, bits,
                                       interprocedural)
        history_ok = result.unique and result.paths[0] == truth

        paired_ok = history_ok
        if paired_pc is not None and not result.exploded:
            filtered = [p for p in result.paths if paired_pc in p]
            # Only apply the filter when it leaves candidates: when the
            # pair distance exceeds the path length the other PC is
            # legitimately absent and the filter carries no information.
            candidates = filtered if filtered else result.paths
            paired_ok = len(candidates) == 1 and candidates[0] == truth
        return {
            "execution_counts": counts_ok,
            "history_bits": history_ok,
            "history_plus_pair": paired_ok,
        }


def edge_is_dead(edge, counts, at_pc):
    """True if the chosen hottest edge was never executed.

    The execution-counts scheme cannot justify walking over an edge with
    zero profiled executions; the greedy walk stops there.
    """
    return counts.get((edge.pred, at_pc), 0) == 0


def run_reconstruction_experiment(program, trace, history_lengths,
                                  sample_indices, pair_rng=None,
                                  pair_window=50, interprocedural=False,
                                  reconstructor=None):
    """Figure 6 experiment: success rates per scheme per history length.

    Args:
        program, trace: the workload and its functional trace.
        history_lengths: iterable of H values to evaluate.
        sample_indices: trace indices to treat as sampled instructions.
        pair_rng: SamplingRng for choosing the paired instruction's
            distance (uniform in [1, pair_window] retired instructions
            before the sample); None disables the paired scheme's filter.
        interprocedural: which Figure 6 panel to compute.

    Returns dict H -> {scheme: success_rate}.
    """
    recon = reconstructor or PathReconstructor(program, trace)
    results = {}
    for bits in history_lengths:
        tallies = {"execution_counts": 0, "history_bits": 0,
                   "history_plus_pair": 0}
        evaluated = 0
        for index in sample_indices:
            if index <= 0 or index >= len(trace):
                raise AnalysisError("sample index %d out of range" % index)
            paired_pc = None
            if pair_rng is not None:
                distance = pair_rng.pair_distance(pair_window)
                paired_index = index - distance
                if paired_index >= 0:
                    paired_pc = trace[paired_index].pc
            outcome = recon.evaluate_at(index, bits, interprocedural,
                                        paired_pc=paired_pc)
            evaluated += 1
            for scheme, ok in outcome.items():
                if ok:
                    tallies[scheme] += 1
        results[bits] = {scheme: count / evaluated
                         for scheme, count in tallies.items()}
    return results
