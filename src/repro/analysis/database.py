"""Profile database: per-PC incremental aggregation of ProfileMe samples.

Section 5 of the paper: "Space consumption can be reduced by processing
some of the information as the samples are gathered, such as by
aggregating samples for the same instruction, as is done ... in DIGITAL's
Continuous Profiling Infrastructure (DCPI)".  ``ProfileDatabase`` is that
aggregator: constant space per static instruction, one update per sample.

**Columnar layout.**  Aggregates live in a struct-of-arrays
:class:`_ColumnStore`: one ``pc -> row`` index plus parallel per-row
columns — ``samples``, ``taken``, one count column per
``AGGREGATED_EVENTS`` flag, and a ``(count, total, total_sq)`` column
triple per latency register.  Count columns are ``array('q')`` (packed
machine integers, C-speed bulk copies); the latency sum/sum-of-squares
columns are plain lists because they hold unbounded Python integers
(``total_sq`` grows as ``n * value**2``).  An interned event-combo table
maps each distinct events bit-field to the tuple of count columns it
increments, so folding a sample touches no per-flag dict machinery.
``merge`` is column-wise vector addition over a row map (wholesale
column copies when the destination is empty — the shape of every
``collect_database`` query), and ``top_by_event`` is ``heapq.nlargest``
over a single column.

**Time-bucketed rollup.**  With ``rollup_interval > 0`` samples fold
into the column store of the bucket covering their ``fetch_cycle``;
closed buckets roll up into exponentially coarser epochs (1x/8x/64x the
interval) and a ``retain_buckets`` cap evicts the oldest buckets with
exact ``evicted_samples`` accounting, keeping the database bounded under
continuous ingest (the DCPI "database stays bounded" property).  With
``rollup_interval == 0`` (the default) there is a single store and
behaviour — including serialized byte-for-byte output — is identical to
the pre-columnar database.

The dataclass views (:class:`PcProfile`, :class:`LatencyAggregate`) are
preserved as the read API: ``per_pc`` materializes them from the columns
on demand (cached until the next mutation), so every existing consumer
reads exactly what it always read.
"""

import heapq
import operator
from array import array
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import AnalysisError
from repro.events import Event
from repro.profileme.registers import (GroupRecord, LATENCY_FIELDS,
                                       PairedRecord)

# Event flags aggregated per PC (mirrors the ground-truth tracker so the
# two sides of the Figure 3 comparison count the same things).
AGGREGATED_EVENTS = (
    Event.RETIRED,
    Event.ABORTED,
    Event.DCACHE_MISS,
    Event.ICACHE_MISS,
    Event.DTB_MISS,
    Event.ITB_MISS,
    Event.L2_MISS,
    Event.BRANCH_TAKEN,
    Event.MISPREDICT,
    Event.STORE_FORWARD,
    Event.BAD_PATH,
)

_EVENT_COLUMN = {flag: column for column, flag in enumerate(AGGREGATED_EVENTS)}
_LATENCY_COLUMN = {name: column for column, name in enumerate(LATENCY_FIELDS)}
_N_LATENCIES = len(LATENCY_FIELDS)
_TAKEN_KEY = int(Event.BRANCH_TAKEN)

# Exponential epoch spans, as multiples of the rollup interval: level 0
# holds live buckets, 8 aligned level-0 buckets roll up into one level-1
# epoch, 8 level-1 epochs into one level-2 epoch.
EPOCH_SPANS = (1, 8, 64)
_EPOCH_FANOUT = 8

# events bit-field -> tuple of set AGGREGATED_EVENTS flags.  Sample
# streams draw from a handful of event combinations, so decomposing a
# bit-field into flags is memoizable; the cache is bounded because the
# flag universe is (practically, a few dozen combinations; absolutely,
# 2**len(Event)).
_FLAG_CACHE = {}


def decompose_events(events):
    """The AGGREGATED_EVENTS flags set in *events*, as a cached tuple."""
    key = int(events)
    cached = _FLAG_CACHE.get(key)
    if cached is None:
        cached = _FLAG_CACHE[key] = tuple(
            flag for flag in AGGREGATED_EVENTS if key & flag)
    return cached


@dataclass
class LatencyAggregate:
    """Streaming (count, sum, sum of squares) for one latency register."""

    count: int = 0
    total: int = 0
    total_sq: int = 0

    def add(self, value):
        self.count += 1
        self.total += value
        self.total_sq += value * value

    @property
    def mean(self):
        if self.count == 0:
            return None
        return self.total / self.count

    @property
    def variance(self):
        if self.count < 2:
            return None
        mean = self.total / self.count
        return max(0.0, self.total_sq / self.count - mean * mean)


@dataclass
class PcProfile:
    """Aggregated samples for one static instruction (materialized view)."""

    pc: int
    samples: int = 0
    events: Dict[Event, int] = field(default_factory=dict)
    latencies: Dict[str, LatencyAggregate] = field(default_factory=dict)
    taken_count: int = 0  # conditional-branch direction profile
    addresses: list = field(default_factory=list)

    @property
    def retired_samples(self):
        return self.events.get(Event.RETIRED, 0)

    def event_count(self, flag):
        return self.events.get(flag, 0)

    def event_fraction(self, flag):
        if self.samples == 0:
            return 0.0
        return self.events.get(flag, 0) / self.samples

    def latency(self, name):
        aggregate = self.latencies.get(name)
        if aggregate is None:
            return LatencyAggregate()
        return aggregate


@dataclass
class ProbeSeries:
    """Streaming aggregate of one probe's readings over time.

    The database-side form of streamed registry readings: constant
    space per probe name, commutative merge (shards fold readings in
    arrival order; ``last`` is resolved by the highest tick, ties by
    value, so merging two shards is order-independent).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    last: float = 0.0
    last_tick: int = -1

    def add(self, value, tick):
        if self.count == 0:
            self.minimum = self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value
        if (tick, value) >= (self.last_tick, self.last):
            self.last = value
            self.last_tick = tick

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def merge(self, other):
        if other.count == 0:
            return
        if self.count == 0:
            self.minimum, self.maximum = other.minimum, other.maximum
        else:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        self.count += other.count
        self.total += other.total
        if (other.last_tick, other.last) >= (self.last_tick, self.last):
            self.last = other.last
            self.last_tick = other.last_tick


class _ColumnStore:
    """One struct-of-arrays aggregate: parallel per-row columns.

    ``pcs`` and the latency sum columns are plain lists (PCs and the
    running ``n * value**2`` sums are unbounded Python integers); every
    count column is a packed ``array('q')``.
    """

    __slots__ = ("index", "pcs", "samples", "taken", "events", "extras",
                 "lat_count", "lat_total", "lat_sq", "total",
                 "_plans", "_lat_cols")

    def __init__(self):
        self.index = {}  # pc -> row
        self.pcs = []  # row -> pc
        self.samples = array("q")
        self.taken = array("q")
        self.events = tuple(array("q") for _ in AGGREGATED_EVENTS)
        self.extras = {}  # non-aggregated Event flag -> array('q')
        self.lat_count = tuple(array("q") for _ in LATENCY_FIELDS)
        self.lat_total = tuple([] for _ in LATENCY_FIELDS)
        self.lat_sq = tuple([] for _ in LATENCY_FIELDS)
        self.total = 0  # sum(samples)
        # Interned event-combo table: events bit-field -> tuple of count
        # columns to bump (the BRANCH_TAKEN plan includes ``taken``).
        # Plans hold direct array references, so they are per-store.
        self._plans = {}
        self._lat_cols = tuple(zip(self.lat_count, self.lat_total,
                                   self.lat_sq))

    # Plans and the zipped latency-column triples hold references into
    # the store's own arrays; both are caches, rebuilt on unpickle.
    def __getstate__(self):
        return (self.index, self.pcs, self.samples, self.taken, self.events,
                self.extras, self.lat_count, self.lat_total, self.lat_sq,
                self.total)

    def __setstate__(self, state):
        (self.index, self.pcs, self.samples, self.taken, self.events,
         self.extras, self.lat_count, self.lat_total, self.lat_sq,
         self.total) = state
        self._plans = {}
        self._lat_cols = tuple(zip(self.lat_count, self.lat_total,
                                   self.lat_sq))

    # ------------------------------------------------------------------
    # Rows and plans.

    def _new_row(self, pc):
        row = len(self.pcs)
        self.index[pc] = row
        self.pcs.append(pc)
        self.samples.append(0)
        self.taken.append(0)
        for column in self.events:
            column.append(0)
        for column in self.extras.values():
            column.append(0)
        for column in self.lat_count:
            column.append(0)
        for column in self.lat_total:
            column.append(0)
        for column in self.lat_sq:
            column.append(0)
        return row

    def _plan(self, key):
        columns = [column for flag, column
                   in zip(AGGREGATED_EVENTS, self.events) if key & flag]
        if key & _TAKEN_KEY:
            columns.append(self.taken)
        plan = self._plans[key] = tuple(columns)
        return plan

    def _extra_column(self, flag):
        column = self.extras.get(flag)
        if column is None:
            column = self.extras[flag] = array("q", bytes(8 * len(self.pcs)))
        return column

    # ------------------------------------------------------------------
    # Folding.

    def add_record(self, record):
        row = self.index.get(record.pc)
        if row is None:
            row = self._new_row(record.pc)
        self.samples[row] += 1
        self.total += 1
        key = int(record.events)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plan(key)
        for column in plan:
            column[row] += 1
        for value, cols in zip(_read_latencies(record), self._lat_cols):
            if value is not None:
                count_col, total_col, sq_col = cols
                count_col[row] += 1
                total_col[row] += value
                sq_col[row] += value * value

    def fold(self, pc, count, key, latencies):
        """Fold *count* identical samples: events bit-field *key*,
        *latencies* as ``((column, value), ...)``."""
        row = self.index.get(pc)
        if row is None:
            row = self._new_row(pc)
        self.samples[row] += count
        self.total += count
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plan(key)
        for column in plan:
            column[row] += count
        lat_cols = self._lat_cols
        for lat_column, value in latencies:
            count_col, total_col, sq_col = lat_cols[lat_column]
            count_col[row] += count
            total_col[row] += count * value
            sq_col[row] += count * value * value

    def set_profile(self, pc, profile):
        """Replace *pc*'s row with the contents of a :class:`PcProfile`
        (the ``per_pc[pc] = profile`` write-through path)."""
        row = self.index.get(pc)
        if row is None:
            row = self._new_row(pc)
        else:
            self.total -= self.samples[row]
            self.taken[row] = 0
            for column in self.events:
                column[row] = 0
            for column in self.extras.values():
                column[row] = 0
            for count_col, total_col, sq_col in self._lat_cols:
                count_col[row] = 0
                total_col[row] = 0
                sq_col[row] = 0
        self.samples[row] = profile.samples
        self.total += profile.samples
        self.taken[row] = profile.taken_count
        for flag, count in profile.events.items():
            column = _EVENT_COLUMN.get(flag)
            if column is not None:
                self.events[column][row] = count
            else:
                self._extra_column(flag)[row] = count
        for name, aggregate in profile.latencies.items():
            lat_column = _LATENCY_COLUMN.get(name)
            if lat_column is None:
                raise AnalysisError("unknown latency register %r" % (name,))
            self.lat_count[lat_column][row] = aggregate.count
            self.lat_total[lat_column][row] = aggregate.total
            self.lat_sq[lat_column][row] = aggregate.total_sq

    def merge(self, other):
        if not other.pcs:
            return
        if not self.pcs:
            # Wholesale adoption: C-level column copies.  This is the
            # dominant shape — every query merges shards into a fresh
            # database.
            self.index = dict(other.index)
            self.pcs = list(other.pcs)
            self.samples = array("q", other.samples)
            self.taken = array("q", other.taken)
            self.events = tuple(array("q", column) for column in other.events)
            self.extras = {flag: array("q", column)
                           for flag, column in other.extras.items()}
            self.lat_count = tuple(array("q", column)
                                   for column in other.lat_count)
            self.lat_total = tuple(list(column) for column in other.lat_total)
            self.lat_sq = tuple(list(column) for column in other.lat_sq)
            self.total = other.total
            self._plans = {}
            self._lat_cols = tuple(zip(self.lat_count, self.lat_total,
                                       self.lat_sq))
            return
        index = self.index
        rows_self = []
        rows_other = []
        for row_other, pc in enumerate(other.pcs):
            row_self = index.get(pc)
            if row_self is None:
                row_self = self._new_row(pc)
            rows_self.append(row_self)
            rows_other.append(row_other)
        row_map = list(zip(rows_self, rows_other))
        pairs = [(self.samples, other.samples), (self.taken, other.taken)]
        pairs.extend(zip(self.events, other.events))
        pairs.extend(zip(self.lat_count, other.lat_count))
        pairs.extend(zip(self.lat_total, other.lat_total))
        pairs.extend(zip(self.lat_sq, other.lat_sq))
        for flag, column in other.extras.items():
            pairs.append((self._extra_column(flag), column))
        for column_self, column_other in pairs:
            # Most (pc, column) cells are zero; skipping them keeps the
            # vector add proportional to the data actually present.
            for row_self, row_other in row_map:
                value = column_other[row_other]
                if value:
                    column_self[row_self] += value
        self.total += other.total

    # ------------------------------------------------------------------
    # Reads.

    def column_for(self, flag):
        column = _EVENT_COLUMN.get(flag)
        if column is not None:
            return self.events[column]
        return self.extras.get(flag)

    def profile_at(self, row, pc, addresses=None):
        events = {}
        for flag, column in zip(AGGREGATED_EVENTS, self.events):
            count = column[row]
            if count:
                events[flag] = count
        for flag, column in self.extras.items():
            count = column[row]
            if count:
                events[flag] = count
        latencies = {}
        for name, (count_col, total_col, sq_col) in zip(LATENCY_FIELDS,
                                                        self._lat_cols):
            count = count_col[row]
            total = total_col[row]
            total_sq = sq_col[row]
            if count or total or total_sq:
                latencies[name] = LatencyAggregate(
                    count=count, total=total, total_sq=total_sq)
        return PcProfile(pc=pc, samples=self.samples[row], events=events,
                         latencies=latencies, taken_count=self.taken[row],
                         addresses=list(addresses) if addresses else [])


# All six latency registers in one C-level call per record.
_read_latencies = operator.attrgetter(*LATENCY_FIELDS)


class _Bucket:
    """One time bucket: a column store covering [start, start + span)."""

    __slots__ = ("level", "start", "span", "store")

    def __init__(self, level, start, span, store=None):
        self.level = level
        self.start = start
        self.span = span
        self.store = store if store is not None else _ColumnStore()

    def __getstate__(self):
        return (self.level, self.start, self.span, self.store)

    def __setstate__(self, state):
        self.level, self.start, self.span, self.store = state


class _PerPcDict(dict):
    """The materialized ``per_pc`` view: a real dict of
    :class:`PcProfile` rows that writes assignments back through to the
    owning database's columns (``database.per_pc[pc] = profile`` is the
    historical bulk-load idiom of the persistence/PGO/multiprog layers).
    """

    __slots__ = ("_database",)

    def __init__(self, database):
        super().__init__()
        self._database = database

    def __setitem__(self, pc, profile):
        dict.__setitem__(self, pc, profile)
        self._database._assign_profile(pc, profile)


class ProfileDatabase:
    """Per-PC aggregation sink for ProfileMe records."""

    def __init__(self, keep_addresses=0, rollup_interval=0, retain_buckets=0):
        """*keep_addresses*: max effective addresses retained per PC.

        *rollup_interval*: when > 0, samples fold into time buckets of
        this many cycles (by ``fetch_cycle``); closed buckets roll up
        into exponentially coarser epochs.  0 keeps the single flat
        store (bit-identical to the pre-rollup database).

        *retain_buckets*: hard cap on live buckets (0 = unbounded);
        the oldest buckets are evicted, with the evicted sample count
        accounted in :attr:`evicted_samples`.  Requires a rollup
        interval.
        """
        if rollup_interval < 0:
            raise AnalysisError("rollup_interval must be >= 0, got %r"
                                % (rollup_interval,))
        if retain_buckets < 0:
            raise AnalysisError("retain_buckets must be >= 0, got %r"
                                % (retain_buckets,))
        if retain_buckets and not rollup_interval:
            raise AnalysisError("retain_buckets requires a rollup_interval")
        self.keep_addresses = keep_addresses
        self.rollup_interval = rollup_interval
        self.retain_buckets = retain_buckets
        self.total_samples = 0
        self.evicted_samples = 0
        self.probes = {}  # probe name -> ProbeSeries
        # Effective addresses are a capped side table, not bucketed:
        # retention is by arrival order, which rollup cannot reorder.
        self._addresses = {}  # pc -> [(addr, dcache_miss, dtb_miss), ...]
        if rollup_interval:
            self._single = None
            self._buckets = []
            self._current = None
        else:
            self._single = _ColumnStore()
            self._buckets = None
            self._current = None
        self._generation = 0
        self._view = None
        self._view_generation = -1
        self._merged = None
        self._merged_generation = -1

    # The per_pc view and the merged-store scratch hold references back
    # into the database; both are caches, dropped on pickle (worker
    # checkpoints pickle whole databases).
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_view"] = None
        state["_view_generation"] = -1
        state["_merged"] = None
        state["_merged_generation"] = -1
        return state

    # ------------------------------------------------------------------
    # Store routing (rollup).

    def _store_for(self, tick):
        single = self._single
        if single is not None:
            return single
        current = self._current
        if current is not None and \
                current.start <= tick < current.start + current.span:
            return current.store
        return self._route(tick).store

    def _route(self, tick):
        interval = self.rollup_interval
        start = tick - tick % interval
        current = self._current
        if current is None or start > current.start:
            bucket = _Bucket(0, start, interval)
            self._buckets.append(bucket)
            if len(self._buckets) > 1 \
                    and self._buckets[-2].start > bucket.start:
                self._buckets.sort(key=lambda b: (b.start, -b.level))
            self._current = bucket
            self._normalize()
            return bucket
        # A straggler older than the current bucket: fold it into the
        # bucket covering its tick, clamping anything older than the
        # retained horizon into the oldest bucket (so a late sample is
        # retained-and-coarse, never silently dropped).
        for bucket in reversed(self._buckets):
            if bucket.start <= tick < bucket.start + bucket.span:
                return bucket
        return self._buckets[0]

    def _normalize(self):
        """Roll closed buckets into coarser epochs; enforce retention."""
        interval = self.rollup_interval
        current = self._current
        buckets = self._buckets
        if current is not None:
            table = {}
            rolled = False
            for bucket in buckets:
                table[(bucket.level, bucket.start)] = bucket
            for level in (0, 1):
                coarse = interval * EPOCH_SPANS[level] * _EPOCH_FANOUT
                horizon = current.start - current.start % coarse
                for key in [k for k in table if k[0] == level]:
                    bucket = table[key]
                    if bucket is current or bucket.start >= horizon:
                        continue
                    block = bucket.start - bucket.start % coarse
                    target = table.get((level + 1, block))
                    if target is None:
                        target = table[(level + 1, block)] = _Bucket(
                            level + 1, block, coarse)
                    target.store.merge(bucket.store)
                    del table[key]
                    rolled = True
            if rolled:
                buckets = self._buckets = sorted(
                    table.values(), key=lambda b: (b.start, -b.level))
        retain = self.retain_buckets
        if retain:
            while len(buckets) > retain and buckets[0] is not self._current:
                evicted = buckets.pop(0)
                count = evicted.store.total
                self.evicted_samples += count
                self.total_samples -= count

    # ------------------------------------------------------------------
    # Folding.

    def add(self, sample):
        """Fold one record (or every member of a paired/N-way sample) in."""
        if isinstance(sample, PairedRecord):
            self.add_record(sample.first)
            if sample.second is not None:
                self.add_record(sample.second)
            return
        if isinstance(sample, GroupRecord):
            for record in sample.records:
                if record is not None:
                    self.add_record(record)
            return
        self.add_record(sample)

    def add_record(self, record):
        store = self._single
        if store is None:
            store = self._store_for(record.fetch_cycle)
        store.add_record(record)
        self.total_samples += 1
        self._generation += 1
        if self.keep_addresses and record.addr is not None:
            addresses = self._addresses.get(record.pc)
            if addresses is None:
                addresses = self._addresses[record.pc] = []
            if len(addresses) < self.keep_addresses:
                addresses.append(
                    (record.addr, bool(record.events & Event.DCACHE_MISS),
                     bool(record.events & Event.DTB_MISS)))

    def fold_signature(self, pc, count, events_key, latencies, tick=0):
        """Fold *count* identical samples straight into the columns.

        The service's signature-memoized fast path
        (:class:`repro.service.fold.ShardFolder`) resolves each distinct
        wire signature once and lands repeats here: *events_key* is the
        raw events bit-field, *latencies* is ``((column_index, value),
        ...)`` over :data:`~repro.profileme.registers.LATENCY_FIELDS`,
        *tick* routes the fold to a rollup bucket.
        """
        store = self._single
        if store is None:
            store = self._store_for(tick)
        store.fold(pc, count, events_key, latencies)
        self.total_samples += count
        self._generation += 1

    def add_probe_readings(self, readings, tick):
        """Fold one streamed registry reading set in.

        *readings* is ``{probe name: value}`` at cycle/tick *tick*;
        non-numeric values (unlatched registers read as None, enum
        names) are skipped — the series aggregates only quantities.
        """
        for name, value in readings.items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            series = self.probes.get(name)
            if series is None:
                series = ProbeSeries()
                self.probes[name] = series
            series.add(value, tick)

    def _assign_profile(self, pc, profile):
        """Write-through for ``per_pc[pc] = profile`` (replace semantics,
        keyed by the mapping key — the multiprog layer re-keys profiles
        under context-shifted PCs).  Does not touch ``total_samples``,
        matching the historical plain-dict behaviour."""
        store = self._single
        if store is None:
            current = self._current
            if current is None:
                current = _Bucket(0, 0, self.rollup_interval)
                self._buckets.append(current)
                self._current = current
            store = current.store
        store.set_profile(pc, profile)
        if profile.addresses:
            self._addresses[pc] = list(profile.addresses)
        else:
            self._addresses.pop(pc, None)
        self._generation += 1
        # The caller came through the live view, which already holds the
        # assignment — keep it valid instead of rebuilding.
        if self._view is not None:
            self._view_generation = self._generation

    # ------------------------------------------------------------------
    # Views.

    @property
    def per_pc(self):
        """``{pc: PcProfile}`` materialized from the columns (cached
        until the next mutation; assignments write back through)."""
        if self._view is None or self._view_generation != self._generation:
            view = _PerPcDict(self)
            addresses = self._addresses
            for store in self._stores():
                index = store.index
                profile_at = store.profile_at
                for pc in store.pcs:
                    if pc in view:
                        continue
                    dict.__setitem__(view, pc, profile_at(
                        index[pc], pc, addresses.get(pc)))
            self._view = view
            self._view_generation = self._generation
        return self._view

    def _stores(self):
        if self._single is not None:
            return (self._single,)
        if len(self._buckets) > 1:
            return (self._merged_store(),)
        return tuple(bucket.store for bucket in self._buckets)

    def _merged_store(self):
        """All buckets merged into one scratch store (cached)."""
        if self._single is not None:
            return self._single
        if self._merged is None \
                or self._merged_generation != self._generation:
            merged = _ColumnStore()
            for bucket in self._buckets:
                merged.merge(bucket.store)
            self._merged = merged
            self._merged_generation = self._generation
        return self._merged

    # ------------------------------------------------------------------
    # Queries.

    def pcs(self):
        return sorted(self._merged_store().index)

    def profile(self, pc):
        store = self._merged_store()
        row = store.index.get(pc)
        if row is None:
            return None
        return store.profile_at(row, pc, self._addresses.get(pc))

    def samples_at(self, pc):
        store = self._merged_store()
        row = store.index.get(pc)
        return store.samples[row] if row is not None else 0

    def top_by_event(self, flag, limit=10):
        """PCs ranked by sampled count of *flag*: count descending, ties
        by ascending PC (deterministic across any shard-merge order)."""
        store = self._merged_store()
        column = store.column_for(flag)
        if column is None:
            ranked = heapq.nsmallest(limit, store.pcs)
            return [(pc, 0) for pc in ranked]
        best = heapq.nlargest(
            limit, ((column[row], -pc) for row, pc in enumerate(store.pcs)))
        return [(-negated_pc, count) for count, negated_pc in best]

    def epoch_summaries(self):
        """Per-bucket rollup state, oldest first (empty when disabled).

        Each entry: ``{"level", "start", "span", "samples", "pcs"}``.
        """
        if self._buckets is None:
            return []
        return [{"level": bucket.level, "start": bucket.start,
                 "span": bucket.span, "samples": bucket.store.total,
                 "pcs": len(bucket.store.index)}
                for bucket in self._buckets]

    @property
    def bucket_count(self):
        return len(self._buckets) if self._buckets is not None else 0

    @property
    def ingested_samples(self):
        """Everything ever folded in: retained + evicted."""
        return self.total_samples + self.evicted_samples

    def to_dict(self):
        """Serialize to the versioned ``repro-profile`` document form.

        Convenience delegate to :mod:`repro.analysis.persistence` (the
        canonical format definition lives there); the profiling service
        ships shards and exports through this document form.
        """
        from repro.analysis.persistence import database_to_dict

        return database_to_dict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a database from :meth:`to_dict` output."""
        from repro.analysis.persistence import database_from_dict

        return database_from_dict(data)

    # ------------------------------------------------------------------
    # Persistence support (used by repro.analysis.persistence).

    def bucket_views(self):
        """``(level, start, span, {pc: PcProfile})`` per bucket, oldest
        first — the bucketed document's payload (profiles materialize
        without the global address table; addresses serialize
        separately)."""
        views = []
        for bucket in self._buckets or ():
            store = bucket.store
            profiles = {pc: store.profile_at(store.index[pc], pc)
                        for pc in store.pcs}
            views.append((bucket.level, bucket.start, bucket.span, profiles))
        return views

    def load_bucket(self, level, start, span, profiles):
        """Restore one bucket from its document form (*profiles* is an
        iterable of ``(pc, PcProfile)``)."""
        if self._buckets is None:
            raise AnalysisError("cannot load buckets into a database "
                                "without a rollup_interval")
        bucket = _Bucket(level, start, span)
        store = bucket.store
        for pc, profile in profiles:
            store.set_profile(pc, profile)
        self._buckets.append(bucket)
        self._buckets.sort(key=lambda b: (b.start, -b.level))
        if level == 0 and (self._current is None
                           or start > self._current.start):
            self._current = bucket
        self._generation += 1
        return bucket

    def addresses_table(self):
        """The capped effective-address side table, ``{pc: [(addr,
        dcache_miss, dtb_miss), ...]}`` (live reference)."""
        return self._addresses

    # ------------------------------------------------------------------
    # Merge.

    def merge(self, other):
        """Fold another database's aggregates into this one.

        Bucketed databases align bucket-for-bucket on ``(level, start)``
        (so ``rollup(a) . merge . rollup(b) == rollup(a + b)`` when the
        two streams were bucketed on the same boundaries), then
        re-normalize; a flat database merges into the current bucket.
        """
        if self._buckets is None:
            self._single.merge(other._merged_store())
        elif other._buckets is None:
            if other._single.pcs:
                current = self._current
                if current is None:
                    current = _Bucket(0, 0, self.rollup_interval)
                    self._buckets.append(current)
                    self._current = current
                current.store.merge(other._single)
        else:
            table = {(bucket.level, bucket.start): bucket
                     for bucket in self._buckets}
            for theirs in other._buckets:
                mine = table.get((theirs.level, theirs.start))
                if mine is None:
                    store = _ColumnStore()
                    store.merge(theirs.store)
                    table[(theirs.level, theirs.start)] = _Bucket(
                        theirs.level, theirs.start, theirs.span, store)
                else:
                    mine.store.merge(theirs.store)
            self._buckets = sorted(table.values(),
                                   key=lambda b: (b.start, -b.level))
            self._current = None
            for bucket in reversed(self._buckets):
                if bucket.level == 0:
                    self._current = bucket
                    break
            self._normalize()
        self.total_samples += other.total_samples
        self.evicted_samples += other.evicted_samples
        if self.keep_addresses:
            for pc, theirs in other._addresses.items():
                mine = self._addresses.get(pc)
                if mine is None:
                    mine = self._addresses[pc] = []
                room = self.keep_addresses - len(mine)
                if room > 0:
                    mine.extend(theirs[:room])
        self._generation += 1
        for name, series in other.probes.items():
            target = self.probes.get(name)
            if target is None:
                target = ProbeSeries()
                self.probes[name] = target
            target.merge(series)
