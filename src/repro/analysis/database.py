"""Profile database: per-PC incremental aggregation of ProfileMe samples.

Section 5 of the paper: "Space consumption can be reduced by processing
some of the information as the samples are gathered, such as by
aggregating samples for the same instruction, as is done ... in DIGITAL's
Continuous Profiling Infrastructure (DCPI)".  ``ProfileDatabase`` is that
aggregator: constant space per static instruction, one update per sample.

Aggregates kept per PC: sample count, retired count, per-event counts,
per-latency-register (count, sum, sum-of-squares) — enough to estimate
frequencies (section 5.1), mean latencies with variance, and to feed the
section 6/7 analyses.  Effective addresses are optionally retained (capped)
for the memory-placement optimizations of section 7.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.events import Event
from repro.profileme.registers import (GroupRecord, LATENCY_FIELDS,
                                       PairedRecord)

# Event flags aggregated per PC (mirrors the ground-truth tracker so the
# two sides of the Figure 3 comparison count the same things).
AGGREGATED_EVENTS = (
    Event.RETIRED,
    Event.ABORTED,
    Event.DCACHE_MISS,
    Event.ICACHE_MISS,
    Event.DTB_MISS,
    Event.ITB_MISS,
    Event.L2_MISS,
    Event.BRANCH_TAKEN,
    Event.MISPREDICT,
    Event.STORE_FORWARD,
    Event.BAD_PATH,
)

# events bit-field -> tuple of set AGGREGATED_EVENTS flags.  Sample
# streams draw from a handful of event combinations, so decomposing a
# bit-field into flags is memoizable; the cache is bounded because the
# flag universe is (practically, a few dozen combinations; absolutely,
# 2**len(Event)).
_FLAG_CACHE = {}


def decompose_events(events):
    """The AGGREGATED_EVENTS flags set in *events*, as a cached tuple."""
    key = int(events)
    cached = _FLAG_CACHE.get(key)
    if cached is None:
        cached = _FLAG_CACHE[key] = tuple(
            flag for flag in AGGREGATED_EVENTS if key & flag)
    return cached


@dataclass
class LatencyAggregate:
    """Streaming (count, sum, sum of squares) for one latency register."""

    count: int = 0
    total: int = 0
    total_sq: int = 0

    def add(self, value):
        self.count += 1
        self.total += value
        self.total_sq += value * value

    @property
    def mean(self):
        if self.count == 0:
            return None
        return self.total / self.count

    @property
    def variance(self):
        if self.count < 2:
            return None
        mean = self.total / self.count
        return max(0.0, self.total_sq / self.count - mean * mean)


@dataclass
class PcProfile:
    """Aggregated samples for one static instruction."""

    pc: int
    samples: int = 0
    events: Dict[Event, int] = field(default_factory=dict)
    latencies: Dict[str, LatencyAggregate] = field(default_factory=dict)
    taken_count: int = 0  # conditional-branch direction profile
    addresses: list = field(default_factory=list)

    @property
    def retired_samples(self):
        return self.events.get(Event.RETIRED, 0)

    def event_count(self, flag):
        return self.events.get(flag, 0)

    def event_fraction(self, flag):
        if self.samples == 0:
            return 0.0
        return self.events.get(flag, 0) / self.samples

    def latency(self, name):
        aggregate = self.latencies.get(name)
        if aggregate is None:
            return LatencyAggregate()
        return aggregate


@dataclass
class ProbeSeries:
    """Streaming aggregate of one probe's readings over time.

    The database-side form of streamed registry readings: constant
    space per probe name, commutative merge (shards fold readings in
    arrival order; ``last`` is resolved by the highest tick, ties by
    value, so merging two shards is order-independent).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    last: float = 0.0
    last_tick: int = -1

    def add(self, value, tick):
        if self.count == 0:
            self.minimum = self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value
        if (tick, value) >= (self.last_tick, self.last):
            self.last = value
            self.last_tick = tick

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def merge(self, other):
        if other.count == 0:
            return
        if self.count == 0:
            self.minimum, self.maximum = other.minimum, other.maximum
        else:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        self.count += other.count
        self.total += other.total
        if (other.last_tick, other.last) >= (self.last_tick, self.last):
            self.last = other.last
            self.last_tick = other.last_tick


class ProfileDatabase:
    """Per-PC aggregation sink for ProfileMe records."""

    def __init__(self, keep_addresses=0):
        """*keep_addresses*: max effective addresses retained per PC."""
        self.per_pc = {}
        self.keep_addresses = keep_addresses
        self.total_samples = 0
        self.probes = {}  # probe name -> ProbeSeries

    def _profile(self, pc):
        profile = self.per_pc.get(pc)
        if profile is None:
            profile = PcProfile(pc=pc)
            self.per_pc[pc] = profile
        return profile

    def add(self, sample):
        """Fold one record (or every member of a paired/N-way sample) in."""
        if isinstance(sample, PairedRecord):
            self.add_record(sample.first)
            if sample.second is not None:
                self.add_record(sample.second)
            return
        if isinstance(sample, GroupRecord):
            for record in sample.records:
                if record is not None:
                    self.add_record(record)
            return
        self.add_record(sample)

    def add_record(self, record):
        profile = self._profile(record.pc)
        profile.samples += 1
        self.total_samples += 1
        events = profile.events
        for flag in decompose_events(record.events):
            events[flag] = events.get(flag, 0) + 1
        for name in LATENCY_FIELDS:
            value = getattr(record, name)
            if value is None:
                continue
            aggregate = profile.latencies.get(name)
            if aggregate is None:
                aggregate = LatencyAggregate()
                profile.latencies[name] = aggregate
            aggregate.add(value)
        if record.events & Event.BRANCH_TAKEN:
            profile.taken_count += 1
        if (self.keep_addresses and record.addr is not None
                and len(profile.addresses) < self.keep_addresses):
            profile.addresses.append(
                (record.addr, bool(record.events & Event.DCACHE_MISS),
                 bool(record.events & Event.DTB_MISS)))

    def add_probe_readings(self, readings, tick):
        """Fold one streamed registry reading set in.

        *readings* is ``{probe name: value}`` at cycle/tick *tick*;
        non-numeric values (unlatched registers read as None, enum
        names) are skipped — the series aggregates only quantities.
        """
        for name, value in readings.items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            series = self.probes.get(name)
            if series is None:
                series = ProbeSeries()
                self.probes[name] = series
            series.add(value, tick)

    # ------------------------------------------------------------------
    # Queries.

    def pcs(self):
        return sorted(self.per_pc)

    def profile(self, pc):
        return self.per_pc.get(pc)

    def samples_at(self, pc):
        profile = self.per_pc.get(pc)
        return profile.samples if profile else 0

    def top_by_event(self, flag, limit=10):
        """PCs ranked by sampled count of *flag*, descending."""
        ranked = sorted(self.per_pc.values(),
                        key=lambda p: p.event_count(flag), reverse=True)
        return [(p.pc, p.event_count(flag)) for p in ranked[:limit]]

    def to_dict(self):
        """Serialize to the versioned ``repro-profile`` document form.

        Convenience delegate to :mod:`repro.analysis.persistence` (the
        canonical format definition lives there); the profiling service
        ships shards and exports through this document form.
        """
        from repro.analysis.persistence import database_to_dict

        return database_to_dict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a database from :meth:`to_dict` output."""
        from repro.analysis.persistence import database_from_dict

        return database_from_dict(data)

    def merge(self, other):
        """Fold another database's aggregates into this one."""
        for pc, theirs in other.per_pc.items():
            mine = self._profile(pc)
            mine.samples += theirs.samples
            mine.taken_count += theirs.taken_count
            for flag, count in theirs.events.items():
                mine.events[flag] = mine.events.get(flag, 0) + count
            for name, aggregate in theirs.latencies.items():
                target = mine.latencies.get(name)
                if target is None:
                    target = LatencyAggregate()
                    mine.latencies[name] = target
                target.count += aggregate.count
                target.total += aggregate.total
                target.total_sq += aggregate.total_sq
            room = self.keep_addresses - len(mine.addresses)
            if room > 0:
                mine.addresses.extend(theirs.addresses[:room])
        self.total_samples += other.total_samples
        for name, series in other.probes.items():
            target = self.probes.get(name)
            if target is None:
                target = ProbeSeries()
                self.probes[name] = target
            target.merge(series)
