"""Paired-sample concurrency analysis (sections 5.2 and 6).

Everything here computes from exactly what the paired-sampling hardware
delivers: two ProfileRecords plus the intra-pair fetch latency.  The
:class:`PairTimeline` reconstructs both instructions' pipeline occupancy
on a common time axis (Figure 5b); predicates over timelines define
*overlap*; and :class:`PairAnalyzer` aggregates them incrementally into
the paper's metrics:

* **useful overlap** — while the anchor is *in progress* (fetch to
  retire-ready), the other instruction issues and subsequently retires;
* **wasted issue slots** — ``(L_I * C * S / 2) - (U_I * W * S)``
  (section 5.2.3), the paper's bottleneck metric;
* windowed/pairwise IPC and arbitrary user metrics f(I1, I2)
  (section 5.2.4's "flexible support for concurrency metrics").
"""

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import AnalysisError
from repro.isa.opcodes import OpClass, op_class
from repro.profileme.registers import (GroupRecord, PairedRecord,
                                       ProfileRecord)


@dataclass(frozen=True)
class StageTimes:
    """One instruction's pipeline timestamps on the pair's shared axis.

    All values are cycles relative to the *first* instruction's fetch;
    any stage the instruction never reached (it aborted) is None.
    """

    fetch: int
    map: Optional[int]
    data_ready: Optional[int]
    issue: Optional[int]
    retire_ready: Optional[int]
    retire: Optional[int]

    @property
    def in_progress(self):
        """[fetch, retire_ready) — the paper's "in progress" interval."""
        if self.retire_ready is None:
            return None
        return (self.fetch, self.retire_ready)


def _accumulate(base, increment):
    if base is None or increment is None:
        return None
    return base + increment


def stage_times(record, fetch_offset):
    """Chain a record's latency registers into absolute stage times."""
    fetch = fetch_offset
    mapped = _accumulate(fetch, record.fetch_to_map)
    data_ready = _accumulate(mapped, record.map_to_data_ready)
    issue = _accumulate(data_ready, record.data_ready_to_issue)
    retire_ready = _accumulate(issue, record.issue_to_retire_ready)
    retire = _accumulate(retire_ready, record.retire_ready_to_retire)
    if not record.retired:
        retire = None
    return StageTimes(fetch=fetch, map=mapped, data_ready=data_ready,
                      issue=issue, retire_ready=retire_ready, retire=retire)


class PairTimeline:
    """Both members of a paired sample on a common time axis."""

    def __init__(self, pair):
        if pair.second is None or pair.intra_pair_cycles is None:
            raise AnalysisError("pair is incomplete; cannot build timeline")
        self.pair = pair
        self.first = stage_times(pair.first, 0)
        self.second = stage_times(pair.second, pair.intra_pair_cycles)

    def members(self):
        """[(record, times, other_record, other_times)] for both roles."""
        return [
            (self.pair.first, self.first, self.pair.second, self.second),
            (self.pair.second, self.second, self.pair.first, self.first),
        ]


# ----------------------------------------------------------------------
# Overlap predicates (section 5.2.2's alternative definitions).


def useful_overlap(anchor_times, other_record, other_times):
    """The section 5.2.3 definition: the other instruction issues during
    the anchor's in-progress interval and subsequently retires."""
    interval = anchor_times.in_progress
    if interval is None or other_times.issue is None:
        return False
    if not other_record.retired:
        return False
    start, end = interval
    return start <= other_times.issue < end


def issued_while_stalled(anchor_times, other_record, other_times):
    """Other issued while the anchor sat data-ready in the issue queue."""
    if (anchor_times.data_ready is None or anchor_times.issue is None
            or other_times.issue is None):
        return False
    return anchor_times.data_ready <= other_times.issue < anchor_times.issue


def retired_within(anchor_times, other_record, other_times, cycles):
    """Both retired within *cycles* of each other (pairwise IPC building
    block, section 5.2.4)."""
    if anchor_times.retire is None or other_times.retire is None:
        return False
    return abs(anchor_times.retire - other_times.retire) <= cycles


def concurrent_arithmetic(anchor_record, anchor_times, other_record,
                          other_times):
    """Both occupied arithmetic units in overlapping execute intervals."""
    for record in (anchor_record, other_record):
        if record.op is None or op_class(record.op) not in (
                OpClass.IALU, OpClass.IMUL, OpClass.FP):
            return False
    if (anchor_times.issue is None or anchor_times.retire_ready is None
            or other_times.issue is None
            or other_times.retire_ready is None):
        return False
    lo = max(anchor_times.issue, other_times.issue)
    hi = min(anchor_times.retire_ready, other_times.retire_ready)
    return lo < hi


# ----------------------------------------------------------------------


@dataclass
class PcConcurrency:
    """Per-PC accumulators for the wasted-issue-slot estimator."""

    pc: int
    appearances: int = 0  # samples involving this PC (both pair roles)
    useful_overlaps: int = 0  # U_I
    latency_sum: int = 0  # L_I: sum of fetch->retire-ready over samples
    latency_count: int = 0
    retired_appearances: int = 0


class PairAnalyzer:
    """Incremental sink for PairedRecords implementing section 5.2.

    Args:
        mean_interval: S — mean fetched instructions per sample *pair*.
        pair_window: W — the minor-interval window size.
        issue_width: C — sustainable issue slots per cycle.
    """

    def __init__(self, mean_interval, pair_window, issue_width):
        if mean_interval < 1 or pair_window < 1 or issue_width < 1:
            raise AnalysisError("S, W and C must all be >= 1")
        self.mean_interval = mean_interval
        self.pair_window = pair_window
        self.issue_width = issue_width
        self.per_pc = {}
        self.pairs_seen = 0
        self.pairs_usable = 0
        self._metric_sums = {}
        self._metrics = {}

    def _stats(self, pc):
        stats = self.per_pc.get(pc)
        if stats is None:
            stats = PcConcurrency(pc=pc)
            self.per_pc[pc] = stats
        return stats

    def register_metric(self, name, func):
        """Register an arbitrary pair metric f(first, second, timeline).

        The function's return value is summed; this is the section 5.2.4
        flexibility: "sampling the value of any function that can be
        expressed as f(I1, I2)".
        """
        self._metrics[name] = func
        self._metric_sums[name] = 0.0

    def metric_total(self, name):
        return self._metric_sums[name]

    def add(self, sample):
        """Fold one paired (or N-way) sample into the accumulators.

        An N-way :class:`GroupRecord` is decomposed into its constituent
        ordered pairs (each with the measured fetch offset), so N-way
        sampling feeds the same estimators with N(N-1)/2 pairs per
        interrupt.
        """
        if isinstance(sample, GroupRecord):
            for earlier, later, offset in sample.member_pairs():
                self.add(PairedRecord(first=earlier, second=later,
                                      intra_pair_cycles=offset,
                                      intra_pair_distance=None))
            return
        if not isinstance(sample, PairedRecord):
            return  # single records carry no pair information
        self.pairs_seen += 1
        if sample.second is None or sample.intra_pair_cycles is None:
            return
        self.pairs_usable += 1
        timeline = PairTimeline(sample)
        for record, times, other_record, other_times in timeline.members():
            if record.pc is None:
                continue
            stats = self._stats(record.pc)
            stats.appearances += 1
            if record.retired:
                stats.retired_appearances += 1
            latency = record.fetch_to_retire_ready
            if latency is not None:
                stats.latency_sum += latency
                stats.latency_count += 1
            if useful_overlap(times, other_record, other_times):
                stats.useful_overlaps += 1
        for name, func in self._metrics.items():
            self._metric_sums[name] += func(sample.first, sample.second,
                                            timeline)

    # ------------------------------------------------------------------
    # Section 5.2.3 estimators.

    def estimated_useful_issues(self, pc):
        """U_I * W * S — issue slots used by useful overlap with *pc*."""
        stats = self.per_pc.get(pc)
        if stats is None:
            return 0.0
        return stats.useful_overlaps * self.pair_window * self.mean_interval

    def estimated_total_slots(self, pc):
        """L_I * C * S / 2 — issue slots available while *pc* in progress."""
        stats = self.per_pc.get(pc)
        if stats is None:
            return 0.0
        return (stats.latency_sum * self.issue_width
                * self.mean_interval / 2.0)

    def wasted_issue_slots(self, pc):
        """The paper's bottleneck metric: (L_I*C*S/2) - (U_I*W*S)."""
        return self.estimated_total_slots(pc) - self.estimated_useful_issues(pc)

    def estimated_total_latency(self, pc):
        """L_I * S / 2 — total in-progress cycles over all executions."""
        stats = self.per_pc.get(pc)
        if stats is None:
            return 0.0
        return stats.latency_sum * self.mean_interval / 2.0

    def ranked_by_waste(self, limit=None):
        """PCs by estimated wasted issue slots, descending."""
        ranked = sorted(self.per_pc,
                        key=lambda pc: self.wasted_issue_slots(pc),
                        reverse=True)
        if limit is not None:
            ranked = ranked[:limit]
        return [(pc, self.wasted_issue_slots(pc)) for pc in ranked]


def pairwise_ipc_estimate(pairs, window_cycles, issue_width):
    """Crude neighbourhood-IPC estimate from paired samples.

    Counts the fraction of usable pairs whose members retire within
    *window_cycles* of each other — the section 5.2.4 suggestion for
    measuring "IPC levels in the neighborhood of I".  Returns (fraction,
    usable_pairs).
    """
    close = 0
    usable = 0
    for pair in pairs:
        if pair.second is None or pair.intra_pair_cycles is None:
            continue
        timeline = PairTimeline(pair)
        usable += 1
        if retired_within(timeline.first, pair.second, timeline.second,
                          window_cycles):
            close += 1
    if usable == 0:
        return 0.0, 0
    return close / usable, usable


def ipc_variability(ipc_windows):
    """Section 6 statistics over windowed IPC values.

    Returns dict with max/min ratio and the retire-weighted standard
    deviation as a fraction of the mean.  Windows with zero retires are
    kept for the weighted statistics but excluded from the min (an idle
    window would make every ratio infinite).
    """
    values = [v for v in ipc_windows if v > 0]
    if not values:
        raise AnalysisError("no non-empty IPC windows")
    maximum = max(values)
    minimum = min(values)
    total_weight = sum(values)
    mean = sum(v * v for v in ipc_windows) / total_weight
    variance = sum(v * (v - mean) ** 2 for v in ipc_windows) / total_weight
    return {
        "max": maximum,
        "min": minimum,
        "max_min_ratio": maximum / minimum,
        "weighted_mean": mean,
        "weighted_stddev": math.sqrt(variance),
        "stddev_over_mean": math.sqrt(variance) / mean if mean else 0.0,
    }
