"""Plain-text report formatting for examples and benchmarks.

All benchmark harnesses print their tables through these helpers so the
"rows/series the paper reports" come out in one consistent format.
"""

from repro.analysis.bottlenecks import diagnose
from repro.profileme.registers import LATENCY_FIELDS


def format_table(headers, rows, title=None):
    """Fixed-width text table."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def histogram_ascii(counts, max_width=50, label_fn=str):
    """Render {bucket: count} as an ASCII bar chart (Figure 2 style)."""
    if not counts:
        return "(no samples)"
    peak = max(counts.values())
    lines = []
    for bucket in sorted(counts):
        count = counts[bucket]
        bar = "#" * max(1 if count else 0,
                        int(round(max_width * count / peak)))
        lines.append("%10s | %-*s %d"
                     % (label_fn(bucket), max_width, bar, count))
    return "\n".join(lines)


def latency_table(database, pcs=None, program=None):
    """Per-PC mean latency registers (the Table 1 view of a profile)."""
    headers = ["pc", "insn", "samples"] + [name for name in LATENCY_FIELDS]
    rows = []
    for pc in (pcs if pcs is not None else database.pcs()):
        profile = database.profile(pc)
        if profile is None:
            continue
        name = "%#x" % pc
        text = ""
        if program is not None and program.contains_pc(pc):
            text = program.fetch(pc).disassemble()
        row = [name, text, profile.samples]
        for field_name in LATENCY_FIELDS:
            aggregate = profile.latency(field_name)
            row.append("-" if aggregate.count == 0
                       else "%.1f" % aggregate.mean)
        rows.append(row)
    return format_table(headers, rows, title="Latency registers (mean cycles)")


def bottleneck_report(metrics, database, program=None, limit=10):
    """Human-readable ranking of wasted-slot bottlenecks with diagnoses."""
    from repro.analysis.bottlenecks import top_bottlenecks

    lines = []
    ranked = top_bottlenecks(metrics, key="wasted_slots", limit=limit)
    if not ranked:
        ranked = top_bottlenecks(metrics, key="total_latency", limit=limit)
        lines.append("(no paired data: ranking by total latency)")
    for metric in ranked:
        profile = database.profile(metric.pc)
        text = ""
        if program is not None and program.contains_pc(metric.pc):
            text = program.fetch(metric.pc).disassemble()
        lines.append("pc=%#x %s  samples=%d latency=%.0f wasted=%s"
                     % (metric.pc, text, metric.samples,
                        metric.total_latency,
                        "%.0f" % metric.wasted_slots
                        if metric.wasted_slots is not None else "-"))
        if profile is not None:
            contributions, notes = diagnose(profile)
            for name, mean_value, cause in contributions[:2]:
                lines.append("    %s = %.1f cycles (%s)"
                             % (name, mean_value, cause))
            for note in notes:
                lines.append("    note: %s" % note)
    return "\n".join(lines)
