"""Bottleneck identification metrics (section 6, Figure 7).

The paper's question: does per-instruction *latency* (available from
single-instruction sampling) pinpoint bottlenecks as well as *wasted
issue slots* (which needs paired sampling)?  Figure 7's answer: only when
concurrency is uniform — across code with varying useful concurrency the
two rankings diverge.

This module combines a :class:`ProfileDatabase` (latency estimates) with a
:class:`PairAnalyzer` (waste estimates) into comparable per-PC metrics,
measures how (dis)agreeing the two rankings are, and produces Table 1
style stall diagnoses from the latency registers.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.events import Event
from repro.utils.statistics import pearson, spearman

# Table 1: which latency register implicates which cause.
LATENCY_DIAGNOSIS = {
    "fetch_to_map": "stalls for physical registers or issue-queue slots",
    "map_to_data_ready": "stalls on data dependences",
    "data_ready_to_issue": "execution resource contention",
    "issue_to_retire_ready": "execution latency",
    "retire_ready_to_retire": "stalls on prior unretired instructions",
    "load_issue_to_completion": "memory system latency",
}


@dataclass
class InstructionMetric:
    """Latency and waste estimates for one static instruction."""

    pc: int
    samples: int
    total_latency: float  # estimated total fetch->retire-ready cycles
    wasted_slots: Optional[float]  # None without paired sampling


def instruction_metrics(database, mean_interval, pair_analyzer=None):
    """Per-PC metrics from aggregated samples.

    Total latency is estimated as (sum of sampled in-progress latencies)
    * S: each sample stands for S dynamic executions.  When a
    PairAnalyzer is supplied, its wasted-issue-slot estimate is attached.
    """
    metrics = []
    for pc, profile in database.per_pc.items():
        latency_sum = 0
        chain = ("fetch_to_map", "map_to_data_ready", "data_ready_to_issue",
                 "issue_to_retire_ready")
        complete = all(name in profile.latencies for name in chain)
        if complete:
            counts = [profile.latencies[name].count for name in chain]
            if min(counts) > 0:
                # Sum of per-sample chains == sum of per-register totals
                # when every register was recorded for the same samples.
                latency_sum = sum(profile.latencies[name].total
                                  for name in chain)
        wasted = None
        if pair_analyzer is not None and pc in pair_analyzer.per_pc:
            wasted = pair_analyzer.wasted_issue_slots(pc)
        metrics.append(InstructionMetric(
            pc=pc,
            samples=profile.samples,
            total_latency=latency_sum * mean_interval,
            wasted_slots=wasted,
        ))
    return metrics


def rank_agreement(metrics):
    """Correlation between the latency and waste rankings.

    Returns (pearson, spearman) over instructions that have both metrics.
    Figure 7's claim is that these correlations are weak across code with
    varying concurrency.
    """
    both = [(m.total_latency, m.wasted_slots) for m in metrics
            if m.wasted_slots is not None and m.samples > 0]
    if len(both) < 2:
        return 0.0, 0.0
    xs = [b[0] for b in both]
    ys = [b[1] for b in both]
    return pearson(xs, ys), spearman(xs, ys)


def top_bottlenecks(metrics, key="wasted_slots", limit=10):
    """Instructions ranked by *key* ("wasted_slots" or "total_latency")."""
    if key == "wasted_slots":
        usable = [m for m in metrics if m.wasted_slots is not None]
        usable.sort(key=lambda m: m.wasted_slots, reverse=True)
    elif key == "total_latency":
        usable = sorted(metrics, key=lambda m: m.total_latency, reverse=True)
    else:
        raise ValueError("unknown ranking key %r" % (key,))
    return usable[:limit]


def diagnose(profile):
    """Explain where one instruction's cycles go (Table 1 reading).

    Returns a list of (latency_register, mean_cycles, explanation),
    sorted by mean contribution, plus event-based annotations.
    """
    contributions = []
    for name, cause in LATENCY_DIAGNOSIS.items():
        aggregate = profile.latencies.get(name)
        if aggregate is None or aggregate.count == 0:
            continue
        contributions.append((name, aggregate.mean, cause))
    contributions.sort(key=lambda item: item[1], reverse=True)

    notes = []
    samples = max(1, profile.samples)
    for flag, label in ((Event.DCACHE_MISS, "D-cache miss"),
                        (Event.ICACHE_MISS, "I-cache miss"),
                        (Event.DTB_MISS, "DTB miss"),
                        (Event.MISPREDICT, "branch mispredict"),
                        (Event.ABORTED, "aborted (speculation)")):
        count = profile.event_count(flag)
        if count:
            notes.append("%s in %.1f%% of samples"
                         % (label, 100.0 * count / samples))
    return contributions, notes
