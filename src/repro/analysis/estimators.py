"""Statistical estimators for sampled profiles (section 5.1).

With an average sampling interval of S fetched instructions, k samples
with property P estimate the true count of fetched instructions with P as
``k * S``.  The estimator is unbiased; its coefficient of variation is

    cv(kS) = sqrt(1/N) * sqrt((S - f) / f)  ~=  sqrt(S / (f N))
           =  sqrt(1 / E[k])

so relative error shrinks with the square root of the expected number of
matching samples.  These functions implement the estimator, its error
model, and normal-approximation confidence intervals; Monte-Carlo
validation lives in ``benchmarks/bench_sec51_estimator_error.py`` and in
the property tests.
"""

import math

from repro.errors import AnalysisError


def estimate_count(samples_with_property, mean_interval):
    """The paper's kS estimator of the true fetched-instruction count."""
    if samples_with_property < 0:
        raise AnalysisError("sample count cannot be negative")
    if mean_interval < 1:
        raise AnalysisError("mean interval must be >= 1")
    return samples_with_property * mean_interval


def coefficient_of_variation(total_fetched, mean_interval, fraction):
    """Exact cv of kS: sqrt(1/N) * sqrt((S - f) / f)."""
    if fraction <= 0.0:
        raise AnalysisError("property fraction must be positive")
    if total_fetched < 1:
        raise AnalysisError("need a positive instruction count")
    spread = (mean_interval - fraction) / fraction
    if spread < 0.0:
        spread = 0.0
    return math.sqrt(1.0 / total_fetched) * math.sqrt(spread)


def approx_coefficient_of_variation(expected_samples):
    """The paper's approximation cv ~= sqrt(1 / E[k])."""
    if expected_samples <= 0.0:
        raise AnalysisError("expected sample count must be positive")
    return math.sqrt(1.0 / expected_samples)


def relative_error_envelope(samples_with_property):
    """Half-width of the one-standard-deviation envelope (Figure 3).

    The convergence plots draw ``y = 1 +- 1/sqrt(x)`` around the true
    value; about two thirds of per-instruction estimate/actual ratios
    should fall inside.
    """
    if samples_with_property <= 0:
        return math.inf
    return 1.0 / math.sqrt(samples_with_property)


def confidence_interval(samples_with_property, mean_interval,
                        z=1.96):
    """Normal-approximation CI for the true count, as (low, high).

    Uses sigma(kS) ~= S * sqrt(k): for small f, k is approximately Poisson
    with variance k, which is the regime sampling profilers operate in.
    """
    k = samples_with_property
    if k < 0:
        raise AnalysisError("sample count cannot be negative")
    center = k * mean_interval
    half = z * mean_interval * math.sqrt(k)
    return (max(0.0, center - half), center + half)


def samples_needed(relative_error):
    """Expected matching samples needed to reach *relative_error* cv.

    Inverts cv = sqrt(1/E[k]):  E[k] = 1 / cv^2.  E.g. 10% error needs
    about 100 samples of the property — the rule of thumb the paper's
    convergence discussion implies.
    """
    if relative_error <= 0.0:
        raise AnalysisError("relative error must be positive")
    return math.ceil(1.0 / (relative_error * relative_error))


def ratio_within_envelope(pairs):
    """Fraction of (estimate, actual, k) triples inside the 1-sigma envelope.

    *pairs* yields (estimated_count, actual_count, matching_samples); the
    Figure 3 acceptance check asserts roughly two thirds fall inside.

    Raises :class:`AnalysisError` when no usable pair remains (empty
    input, or every pair filtered for ``actual <= 0``): returning 0.0
    there is indistinguishable from "every estimate missed", which once
    let an accidentally-empty comparison pass for a real failure.
    """
    inside = 0
    total = 0
    for estimated, actual, k in pairs:
        if actual <= 0:
            continue
        total += 1
        half = relative_error_envelope(k)
        ratio = estimated / actual
        if 1.0 - half <= ratio <= 1.0 + half:
            inside += 1
    if total == 0:
        raise AnalysisError(
            "no (estimate, actual) pairs with positive actual counts — "
            "cannot compute an envelope fraction")
    return inside / total
