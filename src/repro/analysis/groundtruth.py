"""Ground-truth collection: what the simulator knows exactly.

The paper evaluates ProfileMe's estimators by comparing sampled estimates
against exact counts from a cycle-accurate simulator (Figure 3, Figure 7).
``GroundTruthCollector`` is a probe that records those exact quantities:

* per-PC fetch/retire/abort counts and event counts (Figure 3 truth);
* optionally, per-cycle counts of issued instructions that eventually
  retire, and per-PC in-progress intervals (exact wasted-issue-slot
  computation for Figure 7);
* optionally, the retire-cycle series (windowed IPC, section 6).

It is *measurement infrastructure*, not part of the ProfileMe proposal:
nothing in ``repro.profileme`` reads it.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.probes import Probe, SLOT_INST
from repro.events import Event

# The event kinds tracked per PC (a dict per PC would be slow).
TRACKED_EVENTS = (
    Event.DCACHE_MISS,
    Event.ICACHE_MISS,
    Event.DTB_MISS,
    Event.ITB_MISS,
    Event.L2_MISS,
    Event.BRANCH_TAKEN,
    Event.MISPREDICT,
    Event.STORE_FORWARD,
)


@dataclass
class PcTruth:
    """Exact per-static-instruction counters."""

    fetched: int = 0
    retired: int = 0
    aborted: int = 0
    events: Dict[Event, int] = field(default_factory=dict)
    latency_sum: int = 0  # fetch -> retire-ready, retired instructions
    latency_count: int = 0

    def count_event(self, flag):
        return self.events.get(flag, 0)


class GroundTruthCollector(Probe):
    """Exact per-PC statistics plus optional time series."""

    def __init__(self, collect_intervals=False, collect_retire_series=False,
                 collect_issue_series=False):
        self.per_pc = {}
        self.collect_intervals = collect_intervals
        self.collect_retire_series = collect_retire_series
        self.collect_issue_series = collect_issue_series

        self.intervals = {}  # pc -> [(fetch_cycle, retire_ready_cycle)]
        self.retire_series = {}  # cycle -> retired count
        self.issued_retired_series = {}  # issue cycle -> eventually-retired count
        self.total_fetched = 0
        self.total_retired = 0
        self.total_aborted = 0

    def _truth(self, pc):
        truth = self.per_pc.get(pc)
        if truth is None:
            truth = PcTruth()
            self.per_pc[pc] = truth
        return truth

    # ------------------------------------------------------------------

    def on_fetch_slots(self, cycle, slots):
        for slot in slots:
            if slot.kind == SLOT_INST:
                self._truth(slot.dyninst.pc).fetched += 1
                self.total_fetched += 1

    def _record_done(self, dyninst):
        truth = self._truth(dyninst.pc)
        events = dyninst.events
        for flag in TRACKED_EVENTS:
            if events & flag:
                truth.events[flag] = truth.events.get(flag, 0) + 1
        return truth

    def on_retire(self, dyninst, cycle):
        truth = self._record_done(dyninst)
        truth.retired += 1
        self.total_retired += 1
        in_progress = dyninst.fetch_to_retire_ready
        if in_progress is not None:
            truth.latency_sum += in_progress
            truth.latency_count += 1
        if self.collect_retire_series:
            self.retire_series[cycle] = self.retire_series.get(cycle, 0) + 1
        if self.collect_issue_series and dyninst.issue_cycle is not None:
            issue = dyninst.issue_cycle
            self.issued_retired_series[issue] = (
                self.issued_retired_series.get(issue, 0) + 1)
        if self.collect_intervals and in_progress is not None:
            self.intervals.setdefault(dyninst.pc, []).append(
                (dyninst.fetch_cycle, dyninst.exec_complete_cycle))

    def on_abort(self, dyninst, cycle):
        truth = self._record_done(dyninst)
        truth.aborted += 1
        self.total_aborted += 1

    # ------------------------------------------------------------------
    # Exact metrics.

    def wasted_issue_slots(self, pc, issue_width):
        """Exact wasted issue slots while instances of *pc* were in progress.

        For each retired instance, counts ``issue_width`` slots per cycle
        of its [fetch, retire-ready) interval minus the issue slots used
        during that interval by instructions that eventually retired.
        Requires collect_intervals and collect_issue_series.
        """
        if not (self.collect_intervals and self.collect_issue_series):
            raise ValueError("enable collect_intervals and "
                             "collect_issue_series to compute exact waste")
        used = 0
        available = 0
        for start, end in self.intervals.get(pc, ()):
            available += issue_width * (end - start)
            for cyc in range(start, end):
                used += self.issued_retired_series.get(cyc, 0)
        return available - used

    def windowed_ipc(self, window_cycles, end_cycle=None):
        """Retired-instruction counts per fixed window (section 6).

        Returns a list of per-window IPC values from the retire series.
        """
        if not self.collect_retire_series:
            raise ValueError("enable collect_retire_series for windowed IPC")
        if not self.retire_series:
            return []
        last = end_cycle if end_cycle is not None else max(self.retire_series)
        windows = [0] * (last // window_cycles + 1)
        for cycle, count in self.retire_series.items():
            if cycle <= last:
                windows[cycle // window_cycles] += count
        return [count / window_cycles for count in windows]
