"""Profile persistence: save/load/merge databases as JSON.

DCPI-style continuous profiling accumulates profiles across many runs;
``ProfileDatabase.merge`` provides the accumulation and this module the
on-disk format.  The format is a versioned, human-readable JSON document
holding exactly the database's aggregates (never raw records).
"""

import json

from repro.analysis.database import LatencyAggregate, PcProfile, ProfileDatabase
from repro.errors import AnalysisError
from repro.events import Event

FORMAT_VERSION = 1


def database_to_dict(database):
    """Serialize a ProfileDatabase to plain JSON-safe structures."""
    per_pc = {}
    for pc, profile in database.per_pc.items():
        per_pc[str(pc)] = {
            "samples": profile.samples,
            "taken_count": profile.taken_count,
            "events": {flag.name: count
                       for flag, count in profile.events.items()},
            "latencies": {
                name: [agg.count, agg.total, agg.total_sq]
                for name, agg in profile.latencies.items()
            },
            "addresses": [[addr, dmiss, tmiss]
                          for addr, dmiss, tmiss in profile.addresses],
        }
    return {
        "format": "repro-profile",
        "version": FORMAT_VERSION,
        "total_samples": database.total_samples,
        "keep_addresses": database.keep_addresses,
        "per_pc": per_pc,
    }


def database_from_dict(data):
    """Rebuild a ProfileDatabase from :func:`database_to_dict` output."""
    if data.get("format") != "repro-profile":
        raise AnalysisError("not a repro profile document")
    if data.get("version") != FORMAT_VERSION:
        raise AnalysisError("unsupported profile version %r"
                            % (data.get("version"),))
    database = ProfileDatabase(keep_addresses=data.get("keep_addresses", 0))
    database.total_samples = data["total_samples"]
    for pc_text, payload in data["per_pc"].items():
        pc = int(pc_text)
        profile = PcProfile(pc=pc)
        profile.samples = payload["samples"]
        profile.taken_count = payload["taken_count"]
        for flag_name, count in payload["events"].items():
            try:
                flag = Event[flag_name]
            except KeyError:
                raise AnalysisError("unknown event flag %r"
                                    % (flag_name,)) from None
            profile.events[flag] = count
        for name, (count, total, total_sq) in payload["latencies"].items():
            aggregate = LatencyAggregate()
            aggregate.count = count
            aggregate.total = total
            aggregate.total_sq = total_sq
            profile.latencies[name] = aggregate
        profile.addresses = [tuple(item) for item in payload["addresses"]]
        database.per_pc[pc] = profile
    return database


def save_database(database, path):
    """Write the database to *path* as JSON."""
    with open(path, "w") as stream:
        json.dump(database_to_dict(database), stream, indent=1)


def load_database(path):
    """Read a database previously written by :func:`save_database`."""
    with open(path) as stream:
        return database_from_dict(json.load(stream))
