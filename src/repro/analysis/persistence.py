"""Profile persistence: save/load/merge databases as JSON.

DCPI-style continuous profiling accumulates profiles across many runs;
``ProfileDatabase.merge`` provides the accumulation and this module the
on-disk format.  The format is a versioned, human-readable JSON document
holding exactly the database's aggregates (never raw records).

Two document kinds live here:

* ``repro-profile`` — one :class:`ProfileDatabase`
  (:func:`save_database` / :func:`load_database`);
* ``repro-session-result`` — the measured outputs of one detached
  :class:`~repro.engine.session.SessionResult` (summary statistics,
  sampling-hardware accounting, and the embedded profile document).
  This is the checkpoint/cache unit of the sweep layer
  (``repro.engine.sweep``): a result round-trips byte-identically, so a
  cache hit is indistinguishable from a fresh simulation.
"""

import dataclasses
import json
import os

from repro.analysis.database import (LatencyAggregate, PcProfile,
                                     ProbeSeries, ProfileDatabase)
from repro.errors import AnalysisError, PersistenceError
from repro.events import Event

FORMAT_VERSION = 1
BUCKETED_FORMAT_VERSION = 2  # time-bucketed (rollup) profile documents
RESULT_FORMAT_VERSION = 1
PGO_REPORT_FORMAT_VERSION = 1


def canonical_json(document):
    """Byte-stable JSON text for *document*: sorted keys, no whitespace.

    Two documents produce identical text iff they hold identical data,
    regardless of dict insertion order — this is the comparison form the
    profiling service's end-to-end differential (served export vs.
    in-process run) is defined over.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _read_json(path, what):
    """Load a JSON document, converting every failure to a typed error."""
    try:
        with open(path) as stream:
            return json.load(stream)
    except OSError as exc:
        raise PersistenceError("cannot read %s %s: %s"
                               % (what, path, exc)) from exc
    except ValueError as exc:  # JSONDecodeError: corrupt/truncated write
        raise PersistenceError("corrupt %s %s: %s"
                               % (what, path, exc)) from exc


def _profile_payload(profile, with_addresses=True):
    payload = {
        "samples": profile.samples,
        "taken_count": profile.taken_count,
        "events": {flag.name: count
                   for flag, count in profile.events.items()},
        "latencies": {
            name: [agg.count, agg.total, agg.total_sq]
            for name, agg in profile.latencies.items()
        },
    }
    if with_addresses:
        payload["addresses"] = [[addr, dmiss, tmiss]
                                for addr, dmiss, tmiss in profile.addresses]
    return payload


def database_to_dict(database):
    """Serialize a ProfileDatabase to plain JSON-safe structures.

    Flat databases (no rollup) emit the historical version-1 document,
    byte-identical (canonical JSON) to the pre-columnar format — the
    service differential and the golden corpus pin this.  Bucketed
    databases emit the version-2 form: per-bucket ``per_pc`` payloads
    plus the rollup/retention configuration and eviction accounting;
    the capped address table (global, not bucketed) serializes as a
    top-level map.
    """
    if database.rollup_interval:
        buckets = []
        for level, start, span, profiles in database.bucket_views():
            buckets.append({
                "level": level,
                "start": start,
                "span": span,
                "per_pc": {str(pc): _profile_payload(profile,
                                                     with_addresses=False)
                           for pc, profile in profiles.items()},
            })
        document = {
            "format": "repro-profile",
            "version": BUCKETED_FORMAT_VERSION,
            "total_samples": database.total_samples,
            "keep_addresses": database.keep_addresses,
            "rollup_interval": database.rollup_interval,
            "retain_buckets": database.retain_buckets,
            "evicted_samples": database.evicted_samples,
            "buckets": buckets,
        }
        addresses = database.addresses_table()
        if addresses:
            document["addresses"] = {
                str(pc): [[addr, dmiss, tmiss]
                          for addr, dmiss, tmiss in entries]
                for pc, entries in addresses.items() if entries}
    else:
        per_pc = {}
        for pc, profile in database.per_pc.items():
            per_pc[str(pc)] = _profile_payload(profile)
        document = {
            "format": "repro-profile",
            "version": FORMAT_VERSION,
            "total_samples": database.total_samples,
            "keep_addresses": database.keep_addresses,
            "per_pc": per_pc,
        }
    # Streamed probe series ride along only when present, so documents
    # from probe-free runs stay byte-identical to the pre-probes format
    # (the golden corpus and the service differential both pin this).
    if database.probes:
        document["probes"] = {
            name: [series.count, series.total, series.minimum,
                   series.maximum, series.last, series.last_tick]
            for name, series in database.probes.items()
        }
    return document


def _profile_from_payload(pc, payload, with_addresses=True):
    profile = PcProfile(pc=pc)
    profile.samples = payload["samples"]
    profile.taken_count = payload["taken_count"]
    for flag_name, count in payload["events"].items():
        try:
            flag = Event[flag_name]
        except KeyError:
            raise AnalysisError("unknown event flag %r"
                                % (flag_name,)) from None
        profile.events[flag] = count
    for name, (count, total, total_sq) in payload["latencies"].items():
        aggregate = LatencyAggregate()
        aggregate.count = count
        aggregate.total = total
        aggregate.total_sq = total_sq
        profile.latencies[name] = aggregate
    if with_addresses:
        profile.addresses = [tuple(item) for item in payload["addresses"]]
    return profile


def database_from_dict(data):
    """Rebuild a ProfileDatabase from :func:`database_to_dict` output.

    Accepts both document versions: the flat version-1 form (every
    document written before rollup existed) and the bucketed version-2
    form.
    """
    if not isinstance(data, dict) or data.get("format") != "repro-profile":
        raise AnalysisError("not a repro profile document")
    version = data.get("version")
    if version not in (FORMAT_VERSION, BUCKETED_FORMAT_VERSION):
        raise AnalysisError("unsupported profile version %r" % (version,))
    try:
        if version == BUCKETED_FORMAT_VERSION:
            database = ProfileDatabase(
                keep_addresses=data.get("keep_addresses", 0),
                rollup_interval=int(data["rollup_interval"]),
                retain_buckets=int(data.get("retain_buckets", 0)))
            database.evicted_samples = int(data.get("evicted_samples", 0))
            for bucket in data["buckets"]:
                database.load_bucket(
                    int(bucket["level"]), int(bucket["start"]),
                    int(bucket["span"]),
                    ((int(pc_text), _profile_from_payload(
                        int(pc_text), payload, with_addresses=False))
                     for pc_text, payload in bucket["per_pc"].items()))
            addresses = database.addresses_table()
            for pc_text, entries in data.get("addresses", {}).items():
                addresses[int(pc_text)] = [tuple(item) for item in entries]
            database.total_samples = data["total_samples"]
        else:
            database = ProfileDatabase(
                keep_addresses=data.get("keep_addresses", 0))
            database.total_samples = data["total_samples"]
            for pc_text, payload in data["per_pc"].items():
                pc = int(pc_text)
                database.per_pc[pc] = _profile_from_payload(pc, payload)
        for name, fields in data.get("probes", {}).items():
            count, total, minimum, maximum, last, last_tick = fields
            database.probes[name] = ProbeSeries(
                count=count, total=total, minimum=minimum,
                maximum=maximum, last=last, last_tick=last_tick)
    except AnalysisError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise PersistenceError("malformed profile document: %s"
                               % (exc,)) from exc
    return database


def save_database(database, path):
    """Atomically write the database to *path* as JSON.

    Write-to-temp plus :func:`os.replace`, same as :func:`save_result`:
    the profiling service snapshots through this function while readers
    may load concurrently, so a snapshot file either exists complete or
    not at all — never half-written.
    """
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp_path, "w") as stream:
        json.dump(database_to_dict(database), stream, indent=1)
    os.replace(tmp_path, path)


def load_database(path):
    """Read a database previously written by :func:`save_database`.

    Raises :class:`~repro.errors.PersistenceError` for unreadable,
    corrupt (including partially written), or malformed files.
    """
    return database_from_dict(_read_json(path, "profile document"))


# ----------------------------------------------------------------------
# Detached session results (the sweep layer's checkpoint/cache unit).


def result_to_dict(result, spec_key=None):
    """Serialize a detached session result to plain JSON-safe structures.

    Persists exactly the outputs that survive
    :meth:`~repro.engine.session.SessionResult.detach` *and* aggregate
    cleanly: ``CoreStats``, the unit's ``ProfileMeStats``, and the
    profile database (as an embedded ``repro-profile`` document).  Raw
    records and live analyzer objects are deliberately dropped, matching
    this module's never-raw-records rule.

    *spec_key* is the spec's content hash (``repro.engine.sweep.
    spec_key``); storing it in the document makes cache files
    self-describing.
    """
    payload = {
        "format": "repro-session-result",
        "version": RESULT_FORMAT_VERSION,
        "spec_key": spec_key,
        "label": result.spec.label if result.spec is not None else None,
        "cycles": result.cycles,
        "stats": dataclasses.asdict(result.stats),
        "sampling_stats": (dataclasses.asdict(result.sampling_stats)
                           if result.sampling_stats is not None else None),
        "database": (database_to_dict(result.database)
                     if result.database is not None else None),
    }
    probes = getattr(result, "probes", None)
    if probes is not None:
        # Final registry snapshot ({name: {value, kind, unit,
        # description}}); omitted (not null) when absent so documents
        # written before the probe registry existed re-serialize
        # byte-identically.
        payload["probes"] = probes
    two_speed = getattr(result, "two_speed", None)
    if two_speed is not None:
        # Accounting only: the final ArchSnapshot is a verification hook,
        # not a measured output, and its memory image can be large.
        two = dataclasses.asdict(two_speed)
        two.pop("final_state", None)
        payload["two_speed"] = two
    return payload


def result_from_dict(data, spec=None):
    """Rebuild a detached session result from :func:`result_to_dict` output.

    The caller supplies the in-memory *spec* (cache lookups always have
    it in hand — it is what produced the key); the returned result is
    detached: ``core``, ``unit``, ``driver`` are all None.
    """
    from repro.engine.session import CoreStats, SessionResult
    from repro.profileme.unit import ProfileMeStats

    if not isinstance(data, dict) or data.get("format") != "repro-session-result":
        raise AnalysisError("not a repro session-result document")
    if data.get("version") != RESULT_FORMAT_VERSION:
        raise AnalysisError("unsupported session-result version %r"
                            % (data.get("version"),))
    sampling = data.get("sampling_stats")
    database = data.get("database")
    two_speed = data.get("two_speed")
    if two_speed:
        from repro.engine.twospeed import TwoSpeedStats
    try:
        return SessionResult(
            spec=spec,
            core=None,
            cycles=data["cycles"],
            stats=CoreStats(**data["stats"]),
            database=database_from_dict(database) if database else None,
            sampling_stats=ProfileMeStats(**sampling) if sampling else None,
            two_speed=TwoSpeedStats(**two_speed) if two_speed else None,
            probes=data.get("probes"))
    except AnalysisError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError("malformed session-result document: %s"
                               % (exc,)) from exc


def save_result(result, path, spec_key=None):
    """Atomically write one detached session result to *path* as JSON.

    Write-to-temp plus :func:`os.replace` keeps a checkpoint directory
    consistent even if the sweep process is killed mid-flush: a result
    file either exists complete or not at all.
    """
    payload = (result if isinstance(result, dict)
               else result_to_dict(result, spec_key=spec_key))
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp_path, "w") as stream:
        json.dump(payload, stream, indent=1, sort_keys=True)
    os.replace(tmp_path, path)


def load_result(path, spec=None):
    """Read a result previously written by :func:`save_result`.

    Raises :class:`~repro.errors.PersistenceError` for unreadable,
    corrupt (including partially written), or malformed files.
    """
    return result_from_dict(_read_json(path, "session-result document"),
                            spec=spec)


# ----------------------------------------------------------------------
# PGO reports (the repro.pgo pipeline's machine-readable output).


def save_pgo_report(document, path):
    """Atomically write a ``repro-pgo-report`` document to *path*.

    *document* is the plain dict built by
    :func:`repro.pgo.report.build_report`; its envelope (``format``/
    ``version``) is validated here so a malformed report can never be
    written, only to fail on load.
    """
    if (not isinstance(document, dict)
            or document.get("format") != "repro-pgo-report"):
        raise AnalysisError("not a repro PGO report document")
    if document.get("version") != PGO_REPORT_FORMAT_VERSION:
        raise AnalysisError("unsupported PGO report version %r"
                            % (document.get("version"),))
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp_path, "w") as stream:
        json.dump(document, stream, indent=1, sort_keys=True)
    os.replace(tmp_path, path)


def load_pgo_report(path):
    """Read a report previously written by :func:`save_pgo_report`.

    Raises :class:`~repro.errors.PersistenceError` for unreadable or
    corrupt files and :class:`~repro.errors.AnalysisError` for documents
    of the wrong kind or version.
    """
    data = _read_json(path, "PGO report document")
    if not isinstance(data, dict) or data.get("format") != "repro-pgo-report":
        raise AnalysisError("not a repro PGO report document")
    if data.get("version") != PGO_REPORT_FORMAT_VERSION:
        raise AnalysisError("unsupported PGO report version %r"
                            % (data.get("version"),))
    return data
