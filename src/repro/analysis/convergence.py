"""Convergence experiments: sampled estimates vs. exact counts (Figure 3).

The paper samples every 10^3..10^5 fetched instructions from traces of
10^8..10^9 instructions and plots, per static instruction, the ratio of
the estimated to the actual count for two properties (retired, D-cache
miss) against the number of samples.  The estimates converge inside the
``1 +- 1/sqrt(k)`` envelope.

Scaling: convergence depends only on E[k] (expected matching samples per
instruction), so we shrink both N and S proportionally — see DESIGN.md.
"""

from dataclasses import dataclass
from typing import List

from repro.events import Event
from repro.analysis.estimators import (ratio_within_envelope,
                                       relative_error_envelope)


@dataclass(frozen=True)
class ConvergencePoint:
    """One static instruction's estimate for one property."""

    pc: int
    matching_samples: int  # k: samples with the property
    total_samples: int  # all samples of this PC
    estimate: float  # k * S
    actual: int  # simulator ground truth

    @property
    def ratio(self):
        if self.actual == 0:
            return None
        return self.estimate / self.actual

    @property
    def within_envelope(self):
        ratio = self.ratio
        if ratio is None:
            return False
        half = relative_error_envelope(self.matching_samples)
        return 1.0 - half <= ratio <= 1.0 + half


# Property extractors: (per-PC profile -> k, per-PC truth -> actual).
def retired_property(profile, truth):
    return profile.event_count(Event.RETIRED), truth.retired


def dcache_miss_property(profile, truth):
    return (profile.event_count(Event.DCACHE_MISS),
            truth.count_event(Event.DCACHE_MISS))


def mispredict_property(profile, truth):
    return (profile.event_count(Event.MISPREDICT),
            truth.count_event(Event.MISPREDICT))


def effective_interval(total_fetched, total_samples):
    """Measured average sampling interval S.

    The section 5.1 estimator is defined in terms of the *average*
    sampling rate.  The configured interval understates it whenever the
    hardware drops selections that land while the Profile Registers are
    busy, so profiling software calibrates S from an ordinary aggregate
    fetched-instruction counter divided by the number of samples it
    collected — the same self-calibration DCPI applies.
    """
    if total_samples <= 0:
        raise ValueError("no samples collected")
    return total_fetched / total_samples


def convergence_points(database, truth_collector, mean_interval,
                       property_fn=retired_property,
                       min_actual=1) -> List[ConvergencePoint]:
    """Per-PC (estimate, actual) comparison for one property.

    Only PCs with ground truth >= *min_actual* matching instances are
    reported (a ratio against zero is undefined).  *truth_collector* may
    be a GroundTruthCollector or any plain ``pc -> PcTruth`` mapping
    (e.g. ``FunctionalRun.truth``).
    """
    truth_map = getattr(truth_collector, "per_pc", truth_collector)
    points = []
    for pc, profile in database.per_pc.items():
        truth = truth_map.get(pc)
        if truth is None:
            continue
        k, actual = property_fn(profile, truth)
        if actual < min_actual:
            continue
        points.append(ConvergencePoint(
            pc=pc,
            matching_samples=k,
            total_samples=profile.samples,
            estimate=k * mean_interval,
            actual=actual,
        ))
    return points


def envelope_fraction(points):
    """Fraction of points inside the one-sigma envelope (expect ~2/3)."""
    return ratio_within_envelope(
        (p.estimate, p.actual, p.matching_samples) for p in points)


def summarize(points, buckets=(1, 4, 16, 64, 256, 1024)):
    """Envelope fraction and mean |ratio-1| per sample-count bucket.

    Reproduces the visual content of Figure 3 as a table: accuracy
    improves like 1/sqrt(k) as the per-instruction sample count grows.
    """
    rows = []
    for low, high in zip(buckets, list(buckets[1:]) + [float("inf")]):
        bucket = [p for p in points
                  if low <= p.matching_samples < high and p.ratio is not None]
        if not bucket:
            continue
        mean_err = sum(abs(p.ratio - 1.0) for p in bucket) / len(bucket)
        inside = sum(1 for p in bucket if p.within_envelope) / len(bucket)
        rows.append({
            "k_low": low,
            "k_high": high,
            "points": len(bucket),
            "mean_abs_error": mean_err,
            "envelope_fraction": inside,
            "predicted_error": relative_error_envelope(max(1, low)),
        })
    return rows
