"""Multiprogrammed simulation: several contexts sharing a memory system.

The paper stresses that sampling "profiles complete systems" and gives
ProfileMe a *Profiled Context Register* recording "the address space
number or other identification of the process or thread executing the
profiled instruction" (section 4.1.3).  This module exercises that
dimension: several programs run as separate hardware contexts that
interleave on the machine in fixed time quanta while **sharing the
unified L2** (each context keeps private L1s/TLBs, SMT-style private
front-end state), so contexts disturb each other exactly where shared
caches make them.

Implementation: one core instance per context, round-robin scheduled in
*quantum*-cycle slices (the engine layer's resumable ``drain=False``
stepping).  Each core's ProfileMe unit stamps its context id into every
record; the session keeps one profile database per context plus a merged
view, so per-process attribution can be checked against the shared-cache
interference it suffers.  The per-context profiling stack is the shared
:func:`repro.engine.session.attach_profileme` wiring.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.database import ProfileDatabase
from repro.cpu.config import MachineConfig
from repro.cpu.ooo.core import OutOfOrderCore
from repro.engine.session import attach_profileme, profile_config_for_context
from repro.errors import ConfigError
from repro.mem.cache import Cache
from repro.mem.hierarchy import MemoryHierarchy
from repro.profileme.driver import ProfileMeDriver
from repro.profileme.unit import ProfileMeUnit


class SharedL2Hierarchy(MemoryHierarchy):
    """Per-context L1s/TLBs over one shared, physically-tagged L2.

    Contexts run in separate address spaces, so two contexts' identical
    *virtual* addresses live on different physical pages.  The shared L2
    is physically indexed: each context's accesses are offset into a
    disjoint physical range (a one-line stand-in for a page table), so
    contexts compete for L2 capacity instead of accidentally sharing
    lines.
    """

    def __init__(self, shared_l2, context, config=None):
        super().__init__(config)
        self.l2 = shared_l2  # replace the private L2 with the shared one
        self._physical_offset = context << 40

    def _miss_path(self, addr):
        return super()._miss_path(addr + self._physical_offset)


@dataclass
class ContextResult:
    """Everything one context produced."""

    context: int
    program: object
    core: OutOfOrderCore
    driver: Optional[ProfileMeDriver]
    database: Optional[ProfileDatabase]
    unit: Optional[ProfileMeUnit] = None

    @property
    def finished(self):
        return self.core.halted


class MultiProgramSession:
    """Round-robin execution of several programs with a shared L2.

    Args:
        programs: the per-context programs.
        quantum: cycles per scheduling slice.
        config: machine configuration (shared by all contexts).
        profile: optional ProfileMeConfig template; when given, every
            context gets its own ProfileMe unit with ``context`` set to
            its id (and a distinct seed).
    """

    def __init__(self, programs, quantum=200, config=None, profile=None):
        if len(programs) < 1:
            raise ConfigError("need at least one program")
        if quantum < 1:
            raise ConfigError("quantum must be >= 1")
        self.quantum = quantum
        config = config or MachineConfig.alpha21264_like()
        shared_l2 = Cache(config.memory.l2)
        self.shared_l2 = shared_l2

        self.contexts: List[ContextResult] = []
        for index, program in enumerate(programs):
            hierarchy = SharedL2Hierarchy(shared_l2, index, config.memory)
            core = OutOfOrderCore(program, config=config,
                                  hierarchy=hierarchy, context=index)
            driver = None
            database = None
            unit = None
            if profile is not None:
                stack = attach_profileme(
                    core, profile_config_for_context(profile, index),
                    with_pairs=False)
                driver = stack.driver
                database = stack.database
                unit = stack.unit
                core._profileme_unit = unit  # legacy access path
            self.contexts.append(ContextResult(
                context=index, program=program, core=core, driver=driver,
                database=database, unit=unit))

    # ------------------------------------------------------------------

    def run(self, max_total_cycles=5_000_000):
        """Round-robin all contexts to completion; returns total cycles.

        A context that halts drops out of the rotation; the session ends
        when every context has halted (or the cycle budget is exhausted,
        which raises — a scheduling bug, not a valid outcome).
        """
        total = 0
        while True:
            active = [ctx for ctx in self.contexts if not ctx.core.halted]
            if not active:
                break
            for ctx in active:
                if ctx.core.halted:
                    continue
                ran = ctx.core.run(max_cycles=self.quantum, drain=False)
                total += ran
                if ctx.core.halted:
                    ctx.core.run(drain=True)  # no-op loop; drains leftovers
                if total > max_total_cycles:
                    raise ConfigError(
                        "multiprogram session exceeded %d cycles"
                        % max_total_cycles)
        for ctx in self.contexts:
            if ctx.unit is not None:
                ctx.unit.finalize()
        return total

    # ------------------------------------------------------------------

    def merged_database(self):
        """All contexts' profiles merged (requires profiling enabled).

        PCs from different programs are disambiguated by the Profiled
        Context Register: the merged database keys on
        ``(context << 32) | pc`` so overlapping address spaces cannot
        collide.
        """
        merged = ProfileDatabase()
        for ctx in self.contexts:
            if ctx.database is None:
                raise ConfigError("profiling was not enabled")
            for pc, profile in ctx.database.per_pc.items():
                shifted = ProfileDatabase()
                shifted.per_pc[(ctx.context << 32) | pc] = profile
                shifted.total_samples = profile.samples
                merged.merge(shifted)
        return merged

    def context_sample_counts(self):
        """Per-context delivered sample counts."""
        return {ctx.context: (ctx.driver.delivered if ctx.driver else 0)
                for ctx in self.contexts}

    def records_by_context(self):
        """Check of the Profiled Context Register: records grouped by it."""
        grouped: Dict[int, list] = {}
        for ctx in self.contexts:
            if ctx.driver is None:
                continue
            for record in ctx.driver.all_single_records():
                grouped.setdefault(record.context, []).append(record)
        return grouped
